package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
	if got := c.Reset(); got != 5 {
		t.Fatalf("Reset returned %d, want 5", got)
	}
	if got := c.Load(); got != 0 {
		t.Fatalf("Load after Reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("Load = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter(x) returned distinct instances")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("Gauge(y) returned distinct instances")
	}
	if r.Histogram("z") != r.Histogram("z") {
		t.Fatal("Histogram(z) returned distinct instances")
	}
}

func TestRegistrySnapshotAndString(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(9)
	r.Histogram("c").Observe(time.Millisecond)
	s := r.Snapshot()
	if s.Counters["a"] != 2 || s.Gauges["b"] != 9 || s.Histograms["c"].Count != 1 {
		t.Fatalf("bad snapshot: %+v", s)
	}
	out := s.String()
	for _, want := range []string{"counter a = 2", "gauge b = 9", "histogram c"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("Max = %v, want 100ms", s.Max)
	}
	if s.P50 < 40*time.Millisecond || s.P50 > 60*time.Millisecond {
		t.Fatalf("P50 = %v, want around 50ms", s.P50)
	}
	if s.Mean < 45*time.Millisecond || s.Mean > 55*time.Millisecond {
		t.Fatalf("Mean = %v, want around 50.5ms", s.Mean)
	}
	if s.P99 < s.P90 || s.P90 < s.P50 {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 3*histReservoir; i++ {
		h.Observe(time.Duration(i))
	}
	if got := len(h.samples); got > histReservoir {
		t.Fatalf("reservoir grew to %d, cap %d", got, histReservoir)
	}
	if got := h.Count(); got != int64(3*histReservoir) {
		t.Fatalf("Count = %d, want %d", got, 3*histReservoir)
	}
}

func TestHistogramEmptySummary(t *testing.T) {
	s := NewHistogram().Summary()
	if s.Count != 0 || s.P50 != 0 || s.Max != 0 || s.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("Count after Reset != 0")
	}
	if s := h.Summary(); s.Max != 0 {
		t.Fatalf("Max after Reset = %v", s.Max)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(100, time.Second); got != 100 {
		t.Fatalf("Rate = %v, want 100", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Fatalf("Rate with zero elapsed = %v, want 0", got)
	}
	if got := Rate(50, 500*time.Millisecond); got != 100 {
		t.Fatalf("Rate = %v, want 100", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(j))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 2000 {
		t.Fatalf("Count = %d, want 2000", got)
	}
}
