// Package stats collects the metrics the paper's evaluation is built on:
// packets and bytes on the wire, CPU task switches (each wake-up of the
// group-communication layer on a node that is otherwise processing network
// traffic, §4.1), and latency distributions.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative only for test correction; protocol code
// must only add non-negative deltas).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter and returns the previous value.
func (c *Counter) Reset() int64 { return c.v.Swap(0) }

// Gauge is an atomically updated instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a named collection of counters, gauges and histograms. The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns the current counter and gauge values, sorted by name in
// the rendered form. Histograms are summarized by count/p50/p99/max.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSummary
}

// Snapshot captures all metric values at a point in time.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSummary, len(r.histograms)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Load()
	}
	for n, h := range r.histograms {
		s.Histograms[n] = h.Summary()
	}
	return s
}

// String renders the snapshot as stable, sorted lines for logs and tests.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %s = %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge %s = %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "histogram %s = count=%d p50=%v p99=%v max=%v\n",
			n, h.Count, h.P50, h.P99, h.Max)
	}
	return b.String()
}

// Canonical metric names used across the repo. Keeping them here avoids
// typo-split counters between packages.
const (
	// MetricTaskSwitches counts wake-ups of the group-communication
	// layer: one per received protocol packet and one per protocol timer
	// fire (§4.1's CPU overhead metric).
	MetricTaskSwitches = "task_switches"
	// MetricPacketsSent / MetricPacketsRecv count wire packets.
	MetricPacketsSent = "packets_sent"
	MetricPacketsRecv = "packets_recv"
	// MetricBytesSent / MetricBytesRecv count wire payload bytes.
	MetricBytesSent = "bytes_sent"
	MetricBytesRecv = "bytes_recv"
	// MetricRetransmits counts transport-level retransmissions.
	MetricRetransmits = "retransmits"
	// MetricSendFailures counts failure-on-delivery notifications.
	MetricSendFailures = "send_failures"
	// MetricTokenPasses counts confirmed token handoffs.
	MetricTokenPasses = "token_passes"
	// MetricTokenRegens counts 911 token regenerations.
	MetricTokenRegens = "token_regens"
	// MetricMsgsDelivered counts multicast messages delivered upward.
	MetricMsgsDelivered = "msgs_delivered"
	// MetricMsgsSent counts multicast messages submitted by this node.
	MetricMsgsSent = "msgs_sent"
	// MetricMerges counts completed group merges.
	MetricMerges = "merges"
	// MetricDemuxDrops counts frames addressed to a ring the local
	// demultiplexer has no receiver for. A persistently rising value
	// means a peer routes traffic for a ring this node does not host —
	// typically a routing-epoch mismatch after an elastic grow/shrink.
	MetricDemuxDrops = "demux_drops"
	// MetricReshards counts completed routing-epoch handoffs observed by
	// this node (grow or shrink).
	MetricReshards = "reshards_completed"
	// MetricReshardAborts counts handoffs that aborted and stayed on the
	// old routing epoch.
	MetricReshardAborts = "reshard_aborts"
	// MetricReshardKeysMoved counts keys installed into a target shard by
	// handoffs this node coordinated.
	MetricReshardKeysMoved = "reshard_keys_moved"
	// MetricFrozenWrites counts writes rejected with ErrResharding
	// because they addressed a frozen (mid-handoff) keyspace slice.
	MetricFrozenWrites = "frozen_writes_rejected"
	// MetricSnapFrozenWrites counts writes and transaction prepares
	// rejected with ErrSnapshotting because a cross-shard snapshot held
	// its barrier on the key's shard.
	MetricSnapFrozenWrites = "snapshot_frozen_writes"
	// MetricTxnCommits counts cross-shard transactions this node
	// coordinated to a successful commit.
	MetricTxnCommits = "txn_commits"
	// MetricTxnAborts counts cross-shard transaction stages this node's
	// replicas dropped, one per participant ring: coordinated aborts of
	// staged state plus stages aborted by their coordinator's ordered
	// removal. Abort ops for never-staged shards do not count.
	MetricTxnAborts = "txn_aborts"
	// MetricSnapshots counts cross-shard consistent snapshots this node
	// coordinated to completion.
	MetricSnapshots = "snapshots_taken"
	// MetricClusterRetries counts retryable failures the Cluster facade's
	// retry layer absorbed for single-key operations (Set, Delete, Lock,
	// Unlock, Snapshot, Grow, Shrink) before succeeding or giving up.
	MetricClusterRetries = "cluster_op_retries"
	// MetricClusterTxnRetries counts retryable transaction aborts the
	// Cluster facade's retry layer absorbed (each one a re-run of the
	// whole transaction).
	MetricClusterTxnRetries = "cluster_txn_retries"
	// MetricChunkedFrames counts oversized session frames this node split
	// into datagram-sized chunks on send (one per frame, not per chunk) —
	// typically master-lock release bursts that exceed the datagram
	// limit.
	MetricChunkedFrames = "chunked_frames"
	// MetricChunksAssembled counts chunked frames this node reassembled
	// on receive.
	MetricChunksAssembled = "chunks_assembled"
	// MetricChunkDrops counts chunks discarded as stale, duplicate, or
	// inconsistent during reassembly.
	MetricChunkDrops = "chunk_drops"
	// MetricReadsEventual / MetricReadsSession / MetricReadsBounded /
	// MetricReadsLinearizable count local-replica reads served per
	// consistency mode (router-level Get; a fenced read still counts once
	// here when it is finally served).
	MetricReadsEventual     = "reads_eventual"
	MetricReadsSession      = "reads_session"
	MetricReadsBounded      = "reads_bounded"
	MetricReadsLinearizable = "reads_linearizable"
	// MetricReadFences counts read fences ordered on a ring: linearizable
	// reads outside a valid lease, plus bounded-staleness reads whose
	// replica was staler than the bound.
	MetricReadFences = "read_fences"
	// MetricReadLeaseHits counts linearizable reads served locally inside
	// a still-valid epoch-pinned read lease (no fence needed).
	MetricReadLeaseHits = "read_lease_hits"
	// MetricReadSessionWaits counts session reads that had to park until
	// the local replica caught up to the session's write marks.
	MetricReadSessionWaits = "read_session_waits"
	// GaugeAdaptiveBatch is the attach budget currently in force on this
	// node's ring when adaptive batching is enabled (see
	// ring.Config.AdaptiveBatch).
	GaugeAdaptiveBatch = "adaptive_batch_budget"
	// MetricGatewayRequests counts gateway requests; the gateway labels it
	// by op, read mode and outcome via LabeledName
	// (gateway_requests_total{op=...,mode=...,outcome=...}).
	MetricGatewayRequests = "gateway_requests_total"
	// MetricGatewayCoalesced counts reads served by fan-in from another
	// in-flight upstream fetch of the same key×mode (no upstream read of
	// their own).
	MetricGatewayCoalesced = "gateway_coalesced_total"
	// MetricGatewayCacheHits counts reads served from the gateway's
	// optional per-entry TTL micro-cache.
	MetricGatewayCacheHits = "gateway_cache_hits_total"
	// MetricGatewayUpstream counts upstream cluster reads the gateway
	// actually issued (the denominator coalescing and caching shrink).
	MetricGatewayUpstream = "gateway_upstream_reads_total"
	// GaugeGatewayInflight is the number of gateway requests currently
	// being served.
	GaugeGatewayInflight = "gateway_inflight"
	// HistGatewayLatency is gateway request latency; the gateway labels it
	// by read mode (gateway_latency{mode=...}), rendered on /metrics as
	// gateway_latency_seconds bucket series.
	HistGatewayLatency = "gateway_latency"
	// MetricWALAppends counts ordered applies appended to a wal log.
	MetricWALAppends = "wal_appends_total"
	// MetricWALFsyncs counts fsyncs issued by the wal layer (per-append
	// under fsync_mode=always, per batch window under batch).
	MetricWALFsyncs = "wal_fsyncs_total"
	// MetricSnapshotCompactions counts wal tail compactions into an
	// atomic snapshot file.
	MetricSnapshotCompactions = "snapshot_compactions_total"
	// MetricRecoveryReplayed counts wal records replayed through the
	// ordered-apply path during crash recovery.
	MetricRecoveryReplayed = "recovery_replayed_records"
	// MetricRecoveryDeltas counts rejoins served by a delta fast-forward
	// (only the ops the joiner missed) instead of a full snapshot.
	MetricRecoveryDeltas = "recovery_delta_fastforwards"
	// MetricRecoveryFulls counts rejoins that fell back to a full
	// targeted snapshot retransfer.
	MetricRecoveryFulls = "recovery_full_snapshots"
	// MetricTxnDecides counts replicated commit records this node's
	// decide-ring replica applied.
	MetricTxnDecides = "txn_decide_records"
	// MetricTxnOrphanCommits / MetricTxnOrphanAborts count in-doubt
	// staged transactions deterministically terminated from the decide
	// ring after their coordinator failed (or its phase-2 push did).
	MetricTxnOrphanCommits = "txn_orphan_commits"
	MetricTxnOrphanAborts  = "txn_orphan_aborts"
	// MetricTxnPushOrphaned counts phase-2 commit pushes the coordinator
	// abandoned after ordering the decide record; survivors finish them.
	MetricTxnPushOrphaned = "txn_commit_pushes_orphaned"
	// HistMulticastLatency is submit-to-deliver latency at the origin.
	HistMulticastLatency = "multicast_latency"
	// HistReshardPause is the coordinator-observed handoff window: first
	// freeze submitted to final flip applied. Only the moving keyspace
	// slice rejects writes during this window.
	HistReshardPause = "reshard_pause"
	// HistTokenRoundTrip is the token's full-ring round-trip time.
	HistTokenRoundTrip = "token_round_trip"
	// MetricDDSBatchFlushes counts write-coalescer flushes: multi-op
	// opBatch frames submitted to the ordered stream.
	MetricDDSBatchFlushes = "dds_batch_flushes_total"
	// MetricDDSBatchedOps counts the individual Set/Delete ops carried by
	// those frames; batched_ops/flushes is the achieved batch factor.
	MetricDDSBatchedOps = "dds_batched_ops_total"
	// MetricWALBatchAppends counts group-commit appends: AppendBatch
	// calls that wrote a record group with at most one fsync.
	MetricWALBatchAppends = "wal_batch_appends_total"
	// HistGatewayWriteBatch is the per-flush op count observed by a
	// gateway's member replica — the write analog of the read
	// coalescer's fan-in ratio.
	HistGatewayWriteBatch = "gateway_write_batch_size"
	// MetricGatewayPremergeRejects counts writes rejected with 503
	// because the member's replica had not yet joined its group — the
	// lowest-ID-wins merge would silently discard them otherwise.
	MetricGatewayPremergeRejects = "gateway_premerge_rejects_total"
)

// Rate converts a counter delta observed over an elapsed duration into a
// per-second rate. It guards against zero and negative durations.
func Rate(delta int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(delta) / elapsed.Seconds()
}
