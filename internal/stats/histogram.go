package stats

import (
	"sort"
	"sync"
	"time"
)

// Histogram records durations and reports order statistics. It keeps raw
// samples up to a bound, then reservoir-samples, which is plenty for the
// latency distributions in the benchmarks while bounding memory. It also
// counts every sample into a fixed exponential bucket ladder, so a
// snapshot can be rendered as a Prometheus histogram (cumulative
// `le`-bucket counts) without touching the reservoir.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	count   int64
	max     time.Duration
	sum     time.Duration
	// buckets holds per-bucket (non-cumulative) sample counts aligned
	// with BucketBounds; the final slot is the +Inf overflow.
	buckets [len(bucketBounds) + 1]int64
	// rngState drives the reservoir replacement choice; a tiny xorshift
	// keeps the package free of math/rand seeding concerns.
	rngState uint64
}

const histReservoir = 4096

// bucketBounds is the fixed latency ladder every histogram counts into:
// 50µs to 10s, roughly 1-2.5-5 per decade — wide enough for both the
// microsecond local-read path and multi-second reshard pauses. An extra
// implicit +Inf bucket catches the overflow.
var bucketBounds = [...]time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second, 2500 * time.Millisecond,
	5 * time.Second, 10 * time.Second,
}

// BucketBounds returns the fixed upper bounds (exclusive of the implicit
// +Inf overflow bucket) every histogram counts into.
func BucketBounds() []time.Duration {
	b := make([]time.Duration, len(bucketBounds))
	copy(b, bucketBounds[:])
	return b
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{rngState: 0x9E3779B97F4A7C15, samples: make([]time.Duration, 0, 64)}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	idx := len(bucketBounds) // +Inf overflow
	for i, ub := range bucketBounds {
		if d <= ub {
			idx = i
			break
		}
	}
	h.buckets[idx]++
	if len(h.samples) < histReservoir {
		h.samples = append(h.samples, d)
		return
	}
	// Vitter's algorithm R.
	h.rngState ^= h.rngState << 13
	h.rngState ^= h.rngState >> 7
	h.rngState ^= h.rngState << 17
	if idx := h.rngState % uint64(h.count); idx < uint64(len(h.samples)) {
		h.samples[idx] = d
	}
}

// HistogramBucket is one cumulative bucket of a summary: the count of
// samples at or below UpperBound (Prometheus `le` semantics).
type HistogramBucket struct {
	UpperBound time.Duration
	Count      int64
}

// HistogramSummary is a point-in-time digest of a histogram.
type HistogramSummary struct {
	Count int64
	Sum   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
	// Buckets are the cumulative fixed-ladder counts (le semantics); the
	// implicit +Inf count is Count itself.
	Buckets []HistogramBucket
}

// Summary computes order statistics over the retained samples.
func (h *Histogram) Summary() HistogramSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSummary{Count: h.count, Sum: h.sum, Max: h.max}
	s.Buckets = make([]HistogramBucket, len(bucketBounds))
	var cum int64
	for i, ub := range bucketBounds {
		cum += h.buckets[i]
		s.Buckets[i] = HistogramBucket{UpperBound: ub, Count: cum}
	}
	if h.count > 0 {
		s.Mean = h.sum / time.Duration(h.count)
	}
	if len(h.samples) == 0 {
		return s
	}
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(p float64) time.Duration {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	s.P50 = q(0.50)
	s.P90 = q(0.90)
	s.P99 = q(0.99)
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.count = 0
	h.max = 0
	h.sum = 0
	for i := range h.buckets {
		h.buckets[i] = 0
	}
}
