package stats

import (
	"sort"
	"sync"
	"time"
)

// Histogram records durations and reports order statistics. It keeps raw
// samples up to a bound, then reservoir-samples, which is plenty for the
// latency distributions in the benchmarks while bounding memory.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	count   int64
	max     time.Duration
	sum     time.Duration
	// rngState drives the reservoir replacement choice; a tiny xorshift
	// keeps the package free of math/rand seeding concerns.
	rngState uint64
}

const histReservoir = 4096

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{rngState: 0x9E3779B97F4A7C15, samples: make([]time.Duration, 0, 64)}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < histReservoir {
		h.samples = append(h.samples, d)
		return
	}
	// Vitter's algorithm R.
	h.rngState ^= h.rngState << 13
	h.rngState ^= h.rngState >> 7
	h.rngState ^= h.rngState << 17
	if idx := h.rngState % uint64(h.count); idx < uint64(len(h.samples)) {
		h.samples[idx] = d
	}
}

// HistogramSummary is a point-in-time digest of a histogram.
type HistogramSummary struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summary computes order statistics over the retained samples.
func (h *Histogram) Summary() HistogramSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSummary{Count: h.count, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / time.Duration(h.count)
	}
	if len(h.samples) == 0 {
		return s
	}
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(p float64) time.Duration {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	s.P50 = q(0.50)
	s.P90 = q(0.90)
	s.P99 = q(0.99)
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.count = 0
	h.max = 0
	h.sum = 0
}
