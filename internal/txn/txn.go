// Package txn adds multi-key cross-shard transactions to the sharded
// distributed data service: an epoch-pinned two-phase commit over the
// per-ring master locks.
//
// The sharded runtime totally orders each ring's traffic independently,
// so single-key operations are linearizable per key but two keys on
// different rings have no joint atomicity. A Coordinator restores it for
// transactions:
//
//	LOCK     every touched key's dds lock, acquired in one global order
//	         (shard id, then key) so concurrent coordinators cannot
//	         deadlock. The lock rides the same ring as the key, so a
//	         grant implies the local replica has applied every earlier
//	         ordered write to that key — reads under the lock are fresh.
//	PIN      the routing epoch. Any epoch advance — or a handoff in
//	         flight toward one — aborts the transaction with a retryable
//	         error; the ordered freeze/retired checks on each ring are
//	         the authoritative backstop (a prepare into a moving slice is
//	         rejected with ErrResharding at its ordered position).
//	PREPARE  one ordered multicast per participant ring staging the
//	         transaction's writes on every replica of that shard.
//	DECIDE   one ordered multicast on the decide ring replicating the
//	         commit record before any participant applies phase 2. This
//	         closes the classic 2PC window: a coordinator that dies
//	         mid-fan-out leaves stages the survivors resolve
//	         deterministically from the record (present: finish the
//	         commit; absent at the coordinator's ordered removal: abort,
//	         because ring FIFO proves phase 2 never started).
//	COMMIT   one ordered multicast per participant ring applying the
//	         staged writes atomically at that ring's position; or ABORT,
//	         dropping them. Participants whose coordinator was removed
//	         park the stage for the decide ring's verdict (or, without a
//	         commit record, presume abort as before).
//	UNLOCK   the keys. Readers that take the locks therefore see every
//	         write of a committed transaction or none ("atomic
//	         visibility"); bare Get readers converge per ring.
//
// With commit records enabled (the default), Commit never returns
// ErrIndeterminate: phase-2 failures after the record is ordered report
// success — the outcome IS commit, and the unreached rings converge from
// the record. Only WithoutCommitRecords restores the legacy
// indeterminate window.
package txn

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/rcerr"
	"repro/internal/stats"
)

// Store is the sharded keyspace a Coordinator drives. *dds.Sharded
// implements it; tests may substitute fakes.
type Store interface {
	// Epoch returns the routing epoch the store currently routes by.
	Epoch() uint64
	// ShardFor maps a key or lock name to its owning shard (ring id).
	ShardFor(key string) int
	// GetLocal reads a key from its shard's local replica. The local
	// (eventual) read is sufficient here: transactional reads happen
	// under the per-ring master locks, whose ordered acquisition already
	// serialized this replica past every conflicting write.
	GetLocal(key string) ([]byte, bool)
	// Lock acquires the named per-ring master lock.
	Lock(ctx context.Context, name string) error
	// Unlock releases the named lock, waiting for the ordered apply at
	// most until ctx is done.
	Unlock(ctx context.Context, name string) error
	// NewTxnID mints a cluster-unique transaction id.
	NewTxnID() uint64
	// DecideRing returns the ring carrying replicated commit records
	// under the current routing table.
	DecideRing() int
	// TxnPrepare stages the transaction's writes for one shard at an
	// ordered position of its ring; decideRing (-1 = none) rides in the
	// stage so orphaned replicas know where the verdict lives.
	TxnPrepare(ctx context.Context, shard int, id uint64, epoch uint64, decideRing int, writes map[string][]byte, dels []string) error
	// TxnDecide orders the replicated commit record on the decide ring.
	TxnDecide(ctx context.Context, ring int, id uint64) error
	// TxnCommit applies the staged writes; TxnAbort drops them.
	TxnCommit(ctx context.Context, shard int, id uint64) error
	TxnAbort(ctx context.Context, shard int, id uint64) error
}

// ErrAborted reports a transaction that made no change anywhere: every
// participant either rejected the prepare or had its stage dropped. The
// cause is wrapped (ErrResharding, ErrSnapshotting, ErrEpochChanged, a
// lock timeout); the abort is retryable (it matches rcerr.ErrRetryable)
// — re-run the transaction.
var ErrAborted = rcerr.New("txn: transaction aborted, retry")

// ErrIndeterminate reports a phase-2 failure after at least one
// participant ring committed, with NO replicated commit record to
// resolve the rest: the transaction may be partially applied until the
// remaining participants resolve it (a crashed coordinator's stages
// abort at its ordered removal). It is NOT retryable blindly — and it is
// deliberately NOT wrapped as retryable: errors.Is(err,
// rcerr.ErrRetryable) must stay false even though the underlying push
// error often is retryable, so the cause is flattened into the message
// rather than wrapped. Only coordinators built WithoutCommitRecords can
// return it; with records (the default) a phase-2 failure after the
// record is ordered reports success, because the outcome is commit.
var ErrIndeterminate = errors.New("txn: commit outcome indeterminate")

// defaultDeadline bounds Commit when the caller's context carries none:
// a transaction that cannot make progress (for example two coordinators
// on either side of an epoch flip ordering keys differently) must abort
// rather than hold its locks forever.
const defaultDeadline = 30 * time.Second

// commitPush bounds phase 2: the commit decision is made, so the pushes
// run on a context detached from the caller's cancellation.
const commitPush = 10 * time.Second

// Coordinator runs two-phase commits against a Store.
type Coordinator struct {
	store   Store
	pin     func() func() error
	records bool
	reg     *stats.Registry
}

// Option customizes a Coordinator.
type Option func(*Coordinator)

// WithRuntimePin pins transactions to the runtime's routing epoch: each
// transaction captures a core.EpochPin at Begin-time scope and aborts at
// any phase boundary where the epoch advanced or a handoff is in flight.
// Without it, the coordinator falls back to comparing Store.Epoch().
func WithRuntimePin(rt *core.Runtime) Option {
	return func(c *Coordinator) {
		c.pin = func() func() error {
			p := rt.PinEpoch()
			return p.Check
		}
	}
}

// WithoutCommitRecords disables the replicated commit record, restoring
// the legacy presumed-abort protocol: a coordinator crash mid-fan-out
// aborts the unreached stages at its ordered removal, and a phase-2 push
// failure surfaces as ErrIndeterminate. Only useful for comparison
// benchmarks and for clusters that must interoperate with pre-record
// replicas.
func WithoutCommitRecords() Option {
	return func(c *Coordinator) { c.records = false }
}

// WithStats counts phase-2 pushes handed to the background retrier
// (stats.MetricTxnPushOrphaned) in the registry.
func WithStats(reg *stats.Registry) Option {
	return func(c *Coordinator) { c.reg = reg }
}

// New builds a Coordinator over the store. Replicated commit records are
// on by default; see WithoutCommitRecords.
func New(store Store, opts ...Option) *Coordinator {
	c := &Coordinator{store: store, records: true}
	c.pin = func() func() error {
		pinned := store.Epoch()
		return func() error {
			if cur := store.Epoch(); cur != pinned {
				return fmt.Errorf("%w: pinned %d, now %d", core.ErrEpochChanged, pinned, cur)
			}
			return nil
		}
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Txn is one transaction under construction: a read set and a write set,
// declared before Commit. The zero-effect transaction (reads only)
// commits without 2PC — it locks, reads, and unlocks.
type Txn struct {
	c      *Coordinator
	writes map[string][]byte
	dels   map[string]bool
	reads  map[string]bool
}

// Begin starts an empty transaction.
func (c *Coordinator) Begin() *Txn {
	return &Txn{
		c:      c,
		writes: make(map[string][]byte),
		dels:   make(map[string]bool),
		reads:  make(map[string]bool),
	}
}

// Set stages a write of key=val.
func (t *Txn) Set(key string, val []byte) *Txn {
	t.writes[key] = append([]byte(nil), val...)
	delete(t.dels, key)
	return t
}

// Delete stages a deletion of key.
func (t *Txn) Delete(key string) *Txn {
	t.dels[key] = true
	delete(t.writes, key)
	return t
}

// Read adds key to the read set; Commit returns its value as of the
// transaction's serialization point.
func (t *Txn) Read(key string) *Txn {
	t.reads[key] = true
	return t
}

// shardWrites groups one participant ring's share of the write set.
type shardWrites struct {
	kv   map[string][]byte
	dels []string
}

// Commit runs the transaction: lock in global order, pin the epoch, read
// the read set, prepare and commit the write set. It returns the read
// values at the transaction's serialization point. On ErrAborted nothing
// changed anywhere and the transaction can simply be retried; see
// ErrIndeterminate for the phase-2 failure mode.
func (t *Txn) Commit(ctx context.Context) (map[string][]byte, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, defaultDeadline)
		defer cancel()
	}
	c := t.c
	check := c.pin()

	// Global acquisition order: shard id, then key. Every coordinator
	// sorts the same way, so lock waits form no cycle.
	keys := make([]string, 0, len(t.reads)+len(t.writes)+len(t.dels))
	seen := make(map[string]bool)
	for k := range t.reads {
		seen[k] = true
		keys = append(keys, k)
	}
	for k := range t.writes {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range t.dels {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	shardOf := make(map[string]int, len(keys))
	for _, k := range keys {
		shardOf[k] = c.store.ShardFor(k)
	}
	sort.Slice(keys, func(i, j int) bool {
		si, sj := shardOf[keys[i]], shardOf[keys[j]]
		if si != sj {
			return si < sj
		}
		return keys[i] < keys[j]
	})

	var locked []string
	unlock := func() {
		for i := len(locked) - 1; i >= 0; i-- {
			// A release racing a keyspace handoff (or snapshot barrier) is
			// rejected retryably; the lock migrated with its owner intact,
			// so retrying until the epoch flips releases it on its new
			// home ring. Giving up instead would strand the lock and wedge
			// every later transaction on the key. Each lock gets its own
			// retry budget — one slice stuck in a long handoff must not
			// starve the releases of locks on healthy shards.
			uctx, cancel := context.WithTimeout(context.Background(), commitPush)
			for uctx.Err() == nil {
				err := c.store.Unlock(uctx, locked[i])
				if errors.Is(err, rcerr.ErrRetryable) {
					select {
					case <-uctx.Done():
					case <-time.After(2 * time.Millisecond):
					}
					continue
				}
				break // released, or not ours anymore (shard cleanup beat us)
			}
			cancel()
		}
	}
	abort := func(cause error) error {
		return fmt.Errorf("%w: %w", ErrAborted, cause)
	}

	for _, k := range keys {
		if err := c.store.Lock(ctx, k); err != nil {
			unlock()
			return nil, abort(fmt.Errorf("lock %q: %w", k, err))
		}
		locked = append(locked, k)
	}
	if err := check(); err != nil {
		unlock()
		return nil, abort(err)
	}

	// Serialization point: all locks held, epoch stable. Lock grants ride
	// the keys' own rings, so each local replica has applied every write
	// ordered before our acquisition — the reads are fresh.
	views := make(map[string][]byte, len(t.reads))
	for k := range t.reads {
		if v, ok := c.store.GetLocal(k); ok {
			views[k] = v
		}
	}

	byShard := make(map[int]*shardWrites)
	stage := func(shard int) *shardWrites {
		w := byShard[shard]
		if w == nil {
			w = &shardWrites{kv: make(map[string][]byte)}
			byShard[shard] = w
		}
		return w
	}
	for k, v := range t.writes {
		stage(shardOf[k]).kv[k] = v
	}
	for k := range t.dels {
		w := stage(shardOf[k])
		w.dels = append(w.dels, k)
	}
	if len(byShard) == 0 {
		unlock()
		return views, nil
	}
	participants := make([]int, 0, len(byShard))
	for sid := range byShard {
		participants = append(participants, sid)
	}
	sort.Ints(participants)

	id := c.store.NewTxnID()
	epoch := c.store.Epoch()
	decideRing := -1
	if c.records {
		decideRing = c.store.DecideRing()
	}

	// Phase 1: stage the writes on every participant ring.
	var prepared []int
	rollback := func() {
		actx, cancel := context.WithTimeout(context.Background(), commitPush)
		defer cancel()
		for _, sid := range prepared {
			_ = c.store.TxnAbort(actx, sid, id)
		}
	}
	for _, sid := range participants {
		w := byShard[sid]
		if err := c.store.TxnPrepare(ctx, sid, id, epoch, decideRing, w.kv, w.dels); err != nil {
			// The failing shard must be aborted too: a prepare that timed
			// out after its multicast entered the ordered stream still
			// stages later, and an unresolved stage blocks every future
			// freeze and snapshot capture on that shard while this node
			// lives. Abort is idempotent, and ours orders after the
			// in-flight prepare on the same ring, so it always cleans up.
			prepared = append(prepared, sid)
			rollback()
			unlock()
			return nil, abort(fmt.Errorf("prepare shard %d: %w", sid, err))
		}
		prepared = append(prepared, sid)
	}
	if err := check(); err != nil {
		// An epoch moved (or is moving) under our staged writes: the
		// prepares held, but committing across two layouts risks writing
		// a key whose ring ownership just changed. Abort retryably.
		rollback()
		unlock()
		return nil, abort(err)
	}

	// Decide: replicate the commit record before any participant applies
	// phase 2. If ordering it fails we abort instead: the record may or
	// may not have landed on the decide ring, but the ordered aborts in
	// rollback() resolve every stage to abort regardless, and the id is
	// never reused, so a stray record is inert.
	if decideRing >= 0 {
		if err := c.store.TxnDecide(ctx, decideRing, id); err != nil {
			rollback()
			unlock()
			return nil, abort(fmt.Errorf("decide on ring %d: %w", decideRing, err))
		}
	}

	// Phase 2: the decision is commit. Push it to every participant on a
	// detached context — cancelling the caller's ctx here must not strand
	// half the rings.
	cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), commitPush)
	defer cancel()
	var firstErr error
	var failed []int
	committed := 0
	for _, sid := range participants {
		if err := c.store.TxnCommit(cctx, sid, id); err != nil {
			failed = append(failed, sid)
			if firstErr == nil {
				firstErr = fmt.Errorf("commit shard %d: %w", sid, err)
			}
			continue
		}
		committed++
	}
	unlock()
	if firstErr != nil {
		if decideRing >= 0 {
			// The commit record is ordered: the outcome IS commit, so
			// report success. The unreached rings converge from the record
			// even if this node dies right now; the background retrier just
			// shortens the window. TxnCommit is idempotent (a shard whose
			// stage already resolved applies a no-op).
			if c.reg != nil {
				c.reg.Counter(stats.MetricTxnPushOrphaned).Inc()
			}
			go func(pending []int) {
				for attempt := 0; attempt < 5 && len(pending) > 0; attempt++ {
					time.Sleep(time.Duration(attempt+1) * 50 * time.Millisecond)
					pctx, pcancel := context.WithTimeout(context.Background(), commitPush)
					var still []int
					for _, sid := range pending {
						if err := c.store.TxnCommit(pctx, sid, id); err != nil {
							still = append(still, sid)
						}
					}
					pcancel()
					pending = still
				}
			}(failed)
			return views, nil
		}
		// Legacy path (WithoutCommitRecords): a phase-2 error cannot prove
		// non-application — a commit that timed out after its multicast
		// entered the ordered stream still applies. The trailing aborts
		// only clean up stages whose commit genuinely never got submitted
		// (same-ring FIFO orders them after any in-flight commit, which
		// wins); the caller must treat the outcome as indeterminate.
		// ErrIndeterminate is the only %w here on purpose: the push error
		// is often retryable, and wrapping it would let errors.Is(err,
		// rcerr.ErrRetryable) invite a blind retry of a transaction that
		// may already be partially applied. The cause is flattened with %v.
		rollback()
		return views, fmt.Errorf("%w (%d/%d rings acknowledged): %v", ErrIndeterminate, committed, len(participants), firstErr)
	}
	return views, nil
}
