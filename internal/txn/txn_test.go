package txn_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dds"
	"repro/internal/txn"
)

// txnGrid is a multi-ring grid with one Sharded router and one 2PC
// coordinator per node.
type txnGrid struct {
	g      *core.TestGrid
	stores map[core.NodeID]*dds.Sharded
	coords map[core.NodeID]*txn.Coordinator
}

func startTxnGrid(t *testing.T, n, rings int) *txnGrid {
	t.Helper()
	g, err := core.NewTestGrid(core.GridOptions{N: n, Rings: rings, DeferStart: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	tg := &txnGrid{
		g:      g,
		stores: make(map[core.NodeID]*dds.Sharded),
		coords: make(map[core.NodeID]*txn.Coordinator),
	}
	for id, rt := range g.Runtimes {
		s, err := dds.AttachSharded(rt)
		if err != nil {
			t.Fatal(err)
		}
		tg.stores[id] = s
		tg.coords[id] = txn.New(s, txn.WithRuntimePin(rt))
	}
	g.StartAll()
	if err := g.WaitAssembled(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	return tg
}

// crossShardPair finds two keys owned by different shards.
func (tg *txnGrid) crossShardPair(t *testing.T, prefix string) (string, string) {
	t.Helper()
	s := tg.stores[tg.g.IDs[0]]
	a := prefix + "-a"
	for i := 0; i < 4096; i++ {
		b := fmt.Sprintf("%s-b%d", prefix, i)
		if s.ShardFor(b) != s.ShardFor(a) {
			return a, b
		}
	}
	t.Fatal("no cross-shard key pair found")
	return "", ""
}

// waitPendingDrained waits until no node's replicas hold staged txns.
func (tg *txnGrid) waitPendingDrained(t *testing.T, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		total := 0
		for _, s := range tg.stores {
			total += s.PendingTxns()
		}
		if total == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	for id, s := range tg.stores {
		if n := s.PendingTxns(); n > 0 {
			t.Errorf("node %v still holds %d staged transactions", id, n)
		}
	}
	t.Fatal("staged transactions never drained")
}

// TestTxnCommitAcrossShards commits a two-key cross-shard transaction and
// checks both writes land on every node, the read set reflects the
// serialization point, and no staged state lingers.
func TestTxnCommitAcrossShards(t *testing.T) {
	tg := startTxnGrid(t, 3, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	a, b := tg.crossShardPair(t, "basic")

	if _, err := tg.coords[1].Begin().Set(a, []byte("v1")).Set(b, []byte("v1")).Commit(ctx); err != nil {
		t.Fatal(err)
	}
	views, err := tg.coords[2].Begin().Read(a).Read(b).Set(a, []byte("v2")).Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(views[a]) != "v1" || string(views[b]) != "v1" {
		t.Fatalf("read set = %q/%q, want v1/v1", views[a], views[b])
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, id := range tg.g.IDs {
		for {
			va, _ := tg.stores[id].GetLocal(a)
			vb, _ := tg.stores[id].GetLocal(b)
			if string(va) == "v2" && string(vb) == "v1" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %v sees %q/%q, want v2/v1", id, va, vb)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// A delete-only transaction also round-trips.
	if _, err := tg.coords[3].Begin().Delete(a).Delete(b).Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := tg.stores[3].GetLocal(a); ok {
		t.Fatalf("%q survived its transactional delete", a)
	}
	tg.waitPendingDrained(t, 5*time.Second)
}

// TestTxnAtomicVisibility is the partial-commit probe: writers keep
// committing the same value to both halves of a cross-shard pair while
// lock-taking readers assert they never observe two different values —
// i.e. no reader ever sees one half of a commit.
func TestTxnAtomicVisibility(t *testing.T) {
	tg := startTxnGrid(t, 3, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	a, b := tg.crossShardPair(t, "atomic")
	if _, err := tg.coords[1].Begin().Set(a, []byte("seed")).Set(b, []byte("seed")).Commit(ctx); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var commits, aborts atomic.Int64
	for _, id := range tg.g.IDs {
		c := tg.coords[id]
		nid := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := []byte(fmt.Sprintf("w%v-%d", nid, i))
				_, err := c.Begin().Set(a, v).Set(b, v).Commit(ctx)
				switch {
				case err == nil:
					commits.Add(1)
				case errors.Is(err, txn.ErrAborted):
					aborts.Add(1)
				case ctx.Err() != nil:
					return
				default:
					t.Errorf("writer %v: %v", nid, err)
					return
				}
			}
		}()
	}
	readerDeadline := time.Now().Add(2 * time.Second)
	reads := 0
	for time.Now().Before(readerDeadline) {
		views, err := tg.coords[2].Begin().Read(a).Read(b).Commit(ctx)
		if err != nil {
			if errors.Is(err, txn.ErrAborted) {
				continue
			}
			t.Fatalf("reader: %v", err)
		}
		if string(views[a]) != string(views[b]) {
			t.Fatalf("partial commit exposed: %q = %q, %q = %q", a, views[a], b, views[b])
		}
		reads++
	}
	close(stop)
	wg.Wait()
	if reads == 0 || commits.Load() == 0 {
		t.Fatalf("no overlap: %d reads, %d commits", reads, commits.Load())
	}
	t.Logf("atomic visibility held over %d reads against %d commits (%d aborts)",
		reads, commits.Load(), aborts.Load())
	tg.waitPendingDrained(t, 5*time.Second)
}

// TestTxnRacingAddRingAborts grows the ring set mid-traffic: transactions
// racing the handoff must either commit fully or abort with the retryable
// ErrAborted, leaving no staged state behind and both halves of the pair
// equal afterwards.
func TestTxnRacingAddRingAborts(t *testing.T) {
	tg := startTxnGrid(t, 3, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Second)
	defer cancel()
	a, b := tg.crossShardPair(t, "grow")
	if _, err := tg.coords[1].Begin().Set(a, []byte("seed")).Set(b, []byte("seed")).Commit(ctx); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var commits, aborts atomic.Int64
	for _, id := range tg.g.IDs {
		c := tg.coords[id]
		nid := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := []byte(fmt.Sprintf("g%v-%d", nid, i))
				_, err := c.Begin().Set(a, v).Set(b, v).Commit(ctx)
				switch {
				case err == nil:
					commits.Add(1)
				case errors.Is(err, txn.ErrAborted):
					aborts.Add(1)
				case ctx.Err() != nil:
					return
				default:
					t.Errorf("writer %v: unexpected error class: %v", nid, err)
					return
				}
			}
		}()
	}

	// Grow by one ring on every node, exactly like an admin grow. A
	// freeze landing on a mid-prepare stage aborts the handoff retryably,
	// so retry the group grow a few times under this traffic.
	var growErr error
	for attempt := 0; attempt < 5; attempt++ {
		gctx, gcancel := context.WithTimeout(ctx, 30*time.Second)
		var growWG sync.WaitGroup
		errCh := make(chan error, len(tg.g.IDs))
		for _, id := range tg.g.IDs {
			rt := tg.g.Runtimes[id]
			growWG.Add(1)
			go func() {
				defer growWG.Done()
				if _, err := rt.AddRing(gctx); err != nil {
					errCh <- err
				}
			}()
		}
		growWG.Wait()
		gcancel()
		close(errCh)
		growErr = <-errCh
		if growErr == nil || !errors.Is(growErr, core.ErrReshardAborted) {
			break
		}
	}
	if growErr != nil {
		t.Fatalf("grow: %v", growErr)
	}

	time.Sleep(200 * time.Millisecond) // post-grow traffic on the new epoch
	close(stop)
	wg.Wait()
	if aborts.Load() == 0 {
		t.Error("no transaction aborted while racing AddRing (expected epoch-pin or freeze aborts)")
	}
	if commits.Load() == 0 {
		t.Fatal("no transaction committed around the grow")
	}
	tg.waitPendingDrained(t, 5*time.Second)
	views, err := tg.coords[2].Begin().Read(a).Read(b).Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(views[a]) != string(views[b]) {
		t.Fatalf("pair diverged after grow: %q vs %q", views[a], views[b])
	}
	t.Logf("grow raced %d commits, %d retryable aborts", commits.Load(), aborts.Load())
}

// TestTxnCoordinatorDeathMidPrepare stages a prepare on two rings from
// one node, then kills that node before phase 2. Every survivor must
// abort the staged state at the dead coordinator's ordered removal, and
// the pair keeps its pre-transaction values.
func TestTxnCoordinatorDeathMidPrepare(t *testing.T) {
	tg := startTxnGrid(t, 3, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	a, b := tg.crossShardPair(t, "death")
	if _, err := tg.coords[1].Begin().Set(a, []byte("before")).Set(b, []byte("before")).Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Drive the store primitives directly so the transaction stops
	// mid-prepare: node 3 stages writes on both rings and never commits.
	// The stages carry the real decide ring, so the survivors park them
	// as orphans at the coordinator's removal and resolve them toward
	// abort from the (empty) decide replica — the commit-record path's
	// presumed abort.
	dying := tg.stores[3]
	id := dying.NewTxnID()
	epoch := dying.Epoch()
	decideRing := dying.DecideRing()
	for _, key := range []string{a, b} {
		shard := dying.ShardFor(key)
		if err := dying.TxnPrepare(ctx, shard, id, epoch, decideRing, map[string][]byte{key: []byte("torn")}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// The stage is on every survivor's replicas.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if tg.stores[1].PendingTxns() >= 2 && tg.stores[2].PendingTxns() >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stage not replicated: node1=%d node2=%d pending",
				tg.stores[1].PendingTxns(), tg.stores[2].PendingTxns())
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the coordinator before phase 2; its ordered removal must abort
	// the stage everywhere.
	tg.g.Runtimes[3].Close()
	deadline = time.Now().Add(10 * time.Second)
	for {
		if tg.stores[1].PendingTxns() == 0 && tg.stores[2].PendingTxns() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stage leaked past coordinator death: node1=%d node2=%d pending",
				tg.stores[1].PendingTxns(), tg.stores[2].PendingTxns())
		}
		time.Sleep(time.Millisecond)
	}
	for _, id := range []core.NodeID{1, 2} {
		for _, key := range []string{a, b} {
			if v, _ := tg.stores[id].GetLocal(key); string(v) != "before" {
				t.Fatalf("node %v key %q = %q after aborted coordinator, want \"before\"", id, key, v)
			}
		}
	}
}

// TestSnapshotConsistentUnderTxns takes cross-shard snapshots while
// writers keep committing equal values to a cross-shard pair: every
// snapshot must contain both halves with the same value — the barrier
// never splits a commit.
func TestSnapshotConsistentUnderTxns(t *testing.T) {
	tg := startTxnGrid(t, 3, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	a, b := tg.crossShardPair(t, "snap")
	if _, err := tg.coords[1].Begin().Set(a, []byte("seed")).Set(b, []byte("seed")).Commit(ctx); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range tg.g.IDs {
		c := tg.coords[id]
		nid := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := []byte(fmt.Sprintf("s%v-%d", nid, i))
				_, err := c.Begin().Set(a, v).Set(b, v).Commit(ctx)
				if err != nil && !errors.Is(err, txn.ErrAborted) && ctx.Err() == nil {
					t.Errorf("writer %v: %v", nid, err)
					return
				}
			}
		}()
	}

	snaps := 0
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := tg.stores[2].Snapshot(ctx)
		if err != nil {
			if errors.Is(err, dds.ErrSnapshotting) || errors.Is(err, dds.ErrResharding) {
				continue
			}
			t.Fatalf("snapshot: %v", err)
		}
		va, vb := snap[a], snap[b]
		if string(va) != string(vb) {
			t.Fatalf("snapshot split a commit: %q = %q, %q = %q", a, va, b, vb)
		}
		if va == nil {
			t.Fatalf("snapshot missing the pair: %v", snap)
		}
		snaps++
	}
	close(stop)
	wg.Wait()
	if snaps == 0 {
		t.Fatal("no snapshot completed")
	}
	t.Logf("%d consistent snapshots under concurrent cross-shard commits", snaps)
	tg.waitPendingDrained(t, 5*time.Second)
}

// TestSnapshotCoversAllShards checks a quiet-cluster snapshot returns the
// whole keyspace exactly once.
func TestSnapshotCoversAllShards(t *testing.T) {
	tg := startTxnGrid(t, 2, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	want := map[string]string{}
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("cover-%d", i)
		want[k] = fmt.Sprintf("val-%d", i)
		if err := tg.stores[1].Set(ctx, k, []byte(want[k])); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := tg.stores[1].Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d keys, want %d", len(snap), len(want))
	}
	for k, v := range want {
		if string(snap[k]) != v {
			t.Fatalf("snapshot[%q] = %q, want %q", k, snap[k], v)
		}
	}
	// The barrier lifted: writes succeed again.
	if err := tg.stores[2].Set(ctx, "after-snap", []byte("x")); err != nil {
		t.Fatalf("write after snapshot: %v", err)
	}
}
