package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/stats"
)

func backends(t *testing.T) map[string]func() Backend {
	t.Helper()
	return map[string]func() Backend{
		"memory": func() Backend { return NewMemory() },
		"file": func() Backend {
			b, err := Open(t.TempDir(), Options{Fsync: FsyncAlways})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			return b
		},
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			b := mk()
			defer b.Close()
			l, err := b.Ring(0)
			if err != nil {
				t.Fatalf("ring: %v", err)
			}
			if snap, tail, err := l.Recover(); err != nil || snap != nil || len(tail) != 0 {
				t.Fatalf("fresh recover = %v %v %v, want empty", snap, tail, err)
			}
			want := []Record{
				{Origin: 1, Seq: 10, Payload: []byte("alpha")},
				{Origin: 2, Seq: 3, Payload: nil},
				{Origin: 1, Seq: 11, Payload: bytes.Repeat([]byte{0xAB}, 3000)},
			}
			for _, r := range want {
				if err := l.Append(r); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			if l.LogBytes() <= 0 {
				t.Fatal("LogBytes not advancing")
			}
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			l2, err := b.Ring(0)
			if err != nil {
				t.Fatalf("reopen ring: %v", err)
			}
			snap, tail, err := l2.Recover()
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if snap != nil {
				t.Fatalf("unexpected snapshot %q", snap)
			}
			if len(tail) != len(want) {
				t.Fatalf("recovered %d records, want %d", len(tail), len(want))
			}
			for i, r := range tail {
				w := want[i]
				if r.Origin != w.Origin || r.Seq != w.Seq || !bytes.Equal(r.Payload, w.Payload) {
					t.Fatalf("record %d = %+v, want %+v", i, r, w)
				}
			}
		})
	}
}

func TestSnapshotCompactionTruncatesTail(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			b := mk()
			defer b.Close()
			l, _ := b.Ring(2)
			for i := 0; i < 10; i++ {
				if err := l.Append(Record{Origin: 1, Seq: uint64(i + 1), Payload: []byte("x")}); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			if err := l.SaveSnapshot([]byte("STATE-v1")); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			if got := l.LogBytes(); got != 0 {
				t.Fatalf("LogBytes after compaction = %d, want 0", got)
			}
			if err := l.Append(Record{Origin: 1, Seq: 11, Payload: []byte("post")}); err != nil {
				t.Fatalf("append after snapshot: %v", err)
			}
			l.Close()
			l2, _ := b.Ring(2)
			snap, tail, err := l2.Recover()
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if string(snap) != "STATE-v1" {
				t.Fatalf("snapshot = %q", snap)
			}
			if len(tail) != 1 || tail[0].Seq != 11 {
				t.Fatalf("tail = %+v, want the single post-snapshot record", tail)
			}
		})
	}
}

func TestFileRecoverTruncatesCorruptTail(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := b.Ring(0)
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Origin: 7, Seq: uint64(i + 1), Payload: []byte("ok")}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, "ring-000.wal")
	// Append a torn record: a valid header prefix with garbage behind it.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{recMagic, 0xFF, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l2, err := b.Ring(0)
	if err != nil {
		t.Fatal(err)
	}
	_, tail, err := l2.Recover()
	if err != nil {
		t.Fatalf("recover over torn tail: %v", err)
	}
	if len(tail) != 3 {
		t.Fatalf("recovered %d records, want 3", len(tail))
	}
	// The torn bytes must be gone so new appends land on a clean boundary.
	if err := l2.Append(Record{Origin: 7, Seq: 4, Payload: []byte("post-tear")}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, _ := b.Ring(0)
	_, tail, err = l3.Recover()
	if err != nil || len(tail) != 4 {
		t.Fatalf("after tear+append: tail=%d err=%v, want 4 records", len(tail), err)
	}
	b.Close()
}

// TestFileRecoverTruncatesTornBatchRecord crashes mid-way through the
// FINAL batch-appended record: its bytes are cut inside the payload, the
// shape a power loss leaves when the group-commit write was partially on
// disk. Recover must surface every intact record, drop the torn group,
// and leave the file on a clean append boundary.
func TestFileRecoverTruncatesTornBatchRecord(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := b.Ring(0)
	if err := l.AppendBatch([]Record{
		{Origin: 3, Seq: 1, Payload: []byte("batch-one")},
		{Origin: 3, Seq: 2, Payload: []byte("batch-two")},
	}); err != nil {
		t.Fatal(err)
	}
	// The doomed final group: big enough that cutting 40 bytes lands
	// mid-payload, not in the header.
	if err := l.AppendBatch([]Record{{Origin: 3, Seq: 3, Payload: bytes.Repeat([]byte{0xCD}, 200)}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ring-000.wal")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-40); err != nil {
		t.Fatal(err)
	}
	l2, _ := b.Ring(0)
	_, tail, err := l2.Recover()
	if err != nil {
		t.Fatalf("recover over torn batch tail: %v", err)
	}
	if len(tail) != 2 || tail[0].Seq != 1 || tail[1].Seq != 2 {
		t.Fatalf("recovered %+v, want the two intact batch records", tail)
	}
	if err := l2.AppendBatch([]Record{{Origin: 3, Seq: 3, Payload: []byte("retry")}}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, _ := b.Ring(0)
	_, tail, err = l3.Recover()
	if err != nil || len(tail) != 3 {
		t.Fatalf("after tear+append: tail=%d err=%v, want 3 records", len(tail), err)
	}
	b.Close()
}

// TestAppendBatchDurableGroupCommit exercises the pipelined always-mode
// path: the call must not block on the sync, every durability callback
// must fire exactly once, concurrent groups must share fsyncs, and the
// records must all survive recovery.
func TestAppendBatchDurableGroupCommit(t *testing.T) {
	reg := stats.NewRegistry()
	b, err := Open(t.TempDir(), Options{Fsync: FsyncAlways, Stats: reg})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := b.Ring(0)
	const groups = 64
	done := make(chan error, groups)
	for i := 0; i < groups; i++ {
		pending, err := l.AppendBatchDurable(
			[]Record{{Origin: 1, Seq: uint64(i + 1), Payload: []byte("g")}},
			func(err error) { done <- err },
		)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if !pending {
			t.Fatalf("append %d: always-mode file log reported pending=false", i)
		}
	}
	for i := 0; i < groups; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("durability callback %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("callback %d never fired", i)
		}
	}
	fsyncs := reg.Counter(stats.MetricWALFsyncs).Load()
	if fsyncs < 1 || fsyncs > groups {
		t.Fatalf("fsyncs = %d, want between 1 and %d (groups share syncs)", fsyncs, groups)
	}
	if got := reg.Counter(stats.MetricWALBatchAppends).Load(); got != groups {
		t.Fatalf("batch appends counter = %d, want %d", got, groups)
	}
	l.Close()
	l2, _ := b.Ring(0)
	_, tail, err := l2.Recover()
	if err != nil || len(tail) != groups {
		t.Fatalf("recovered %d records err=%v, want %d", len(tail), err, groups)
	}
	b.Close()
}

// TestAppendBatchDurableCloseCompletes closes the log right after
// enqueuing groups: the callbacks the reaped syncer never processed must
// still complete through Close's final flush+sync.
func TestAppendBatchDurableCloseCompletes(t *testing.T) {
	b, err := Open(t.TempDir(), Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := b.Ring(0)
	const groups = 16
	done := make(chan error, groups)
	for i := 0; i < groups; i++ {
		if _, err := l.AppendBatchDurable(
			[]Record{{Origin: 2, Seq: uint64(i + 1), Payload: []byte("c")}},
			func(err error) { done <- err },
		); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < groups; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("callback %d after close: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("callback %d never fired after close", i)
		}
	}
	b.Close()
}

// TestAppendBatchDurableSnapshotCovers compacts while groups await their
// sync: the snapshot durably covers them, so their callbacks must
// complete rather than dangle on a truncated log.
func TestAppendBatchDurableSnapshotCovers(t *testing.T) {
	b, err := Open(t.TempDir(), Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := b.Ring(0)
	const groups = 8
	done := make(chan error, groups)
	for i := 0; i < groups; i++ {
		if _, err := l.AppendBatchDurable(
			[]Record{{Origin: 4, Seq: uint64(i + 1), Payload: []byte("s")}},
			func(err error) { done <- err },
		); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.SaveSnapshot([]byte("covers-pending")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < groups; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("callback %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("callback %d never fired across compaction", i)
		}
	}
	l.Close()
	l2, _ := b.Ring(0)
	snap, _, err := l2.Recover()
	if err != nil || string(snap) != "covers-pending" {
		t.Fatalf("recover = %q err=%v", snap, err)
	}
	b.Close()
}

func TestFileCorruptSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	b, _ := Open(dir, Options{Fsync: FsyncAlways})
	l, _ := b.Ring(1)
	if err := l.SaveSnapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(dir, "ring-001.snap")
	buf, _ := os.ReadFile(path)
	buf[len(buf)-1] ^= 0xFF
	os.WriteFile(path, buf, 0o644)
	l2, _ := b.Ring(1)
	snap, _, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("corrupt snapshot surfaced as %q, want nil", snap)
	}
	b.Close()
}

func TestFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncBatch, FsyncNone} {
		t.Run(mode.String(), func(t *testing.T) {
			reg := stats.NewRegistry()
			b, err := Open(t.TempDir(), Options{Fsync: mode, BatchEvery: time.Millisecond, Stats: reg})
			if err != nil {
				t.Fatal(err)
			}
			l, _ := b.Ring(0)
			for i := 0; i < 50; i++ {
				if err := l.Append(Record{Origin: 1, Seq: uint64(i + 1), Payload: []byte("p")}); err != nil {
					t.Fatal(err)
				}
			}
			if mode == FsyncBatch {
				deadline := time.Now().Add(2 * time.Second)
				for reg.Counter(stats.MetricWALFsyncs).Load() == 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if reg.Counter(stats.MetricWALFsyncs).Load() == 0 {
					t.Fatal("batch mode never synced")
				}
			}
			if mode == FsyncAlways && reg.Counter(stats.MetricWALFsyncs).Load() != 50 {
				t.Fatalf("always mode synced %d times, want 50", reg.Counter(stats.MetricWALFsyncs).Load())
			}
			if got := reg.Counter(stats.MetricWALAppends).Load(); got != 50 {
				t.Fatalf("appends counter = %d, want 50", got)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, _ := b.Ring(0)
			_, tail, err := l2.Recover()
			if err != nil || len(tail) != 50 {
				t.Fatalf("mode %v: recovered %d records err=%v, want 50", mode, len(tail), err)
			}
			b.Close()
		})
	}
}

func TestDoubleCloseAndClosedOps(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			b := mk()
			l, _ := b.Ring(0)
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("double close: %v", err)
			}
			if err := l.Append(Record{Origin: 1, Seq: 1}); err == nil {
				t.Fatal("append on closed log succeeded")
			}
			if err := b.Close(); err != nil {
				t.Fatalf("backend close: %v", err)
			}
			if err := b.Close(); err != nil {
				t.Fatalf("backend double close: %v", err)
			}
		})
	}
}

func TestRoutingMetaRoundTrip(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			b := mk()
			defer b.Close()
			if _, ok, err := b.LoadRouting(); err != nil || ok {
				t.Fatalf("fresh LoadRouting ok=%v err=%v, want absent", ok, err)
			}
			want := RoutingMeta{Epoch: 42, Rings: []int{0, 1, 3}}
			if err := b.SaveRouting(want); err != nil {
				t.Fatal(err)
			}
			got, ok, err := b.LoadRouting()
			if err != nil || !ok {
				t.Fatalf("LoadRouting ok=%v err=%v", ok, err)
			}
			if got.Epoch != 42 || fmt.Sprint(got.Rings) != fmt.Sprint(want.Rings) {
				t.Fatalf("LoadRouting = %+v, want %+v", got, want)
			}
		})
	}
}

func TestParseFsyncMode(t *testing.T) {
	for s, want := range map[string]FsyncMode{"": FsyncBatch, "batch": FsyncBatch, "always": FsyncAlways, "none": FsyncNone} {
		got, err := ParseFsyncMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncMode("bogus"); err == nil {
		t.Fatal("ParseFsyncMode(bogus) succeeded")
	}
}
