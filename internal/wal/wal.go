// Package wal is the pluggable durability backend behind every ring
// replica's dds keyspace. A Backend hands out one Log per ring; the dds
// layer appends every ordered apply to the Log as a checksummed,
// length-prefixed record and periodically compacts the accumulated tail
// into an atomic snapshot (the encoded dds snapshotState). On restart the
// replica replays snapshot+tail through the same filtered-apply path that
// serves live traffic — the applied-sequence vector makes replay
// idempotent — and then fast-forwards through state transfer instead of a
// full retransfer.
//
// Two implementations ship: an in-memory Backend (the default, and what
// the simnet crash-restart tests use — state survives a Close/reopen
// within one process) and a file-backed Backend (what raincored and
// WithStorage use — state survives the process).
package wal

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// FsyncMode controls when a file-backed Log forces appended records to
// stable storage. The in-memory Backend ignores it.
type FsyncMode int

const (
	// FsyncBatch (the default) buffers appends and syncs on a short
	// timer, bounding loss to the batch window while keeping the write
	// path off the fsync critical path.
	FsyncBatch FsyncMode = iota
	// FsyncAlways syncs after every append: no acknowledged record is
	// ever lost, at the cost of one fsync per ordered apply.
	FsyncAlways
	// FsyncNone never syncs explicitly; the OS flushes when it pleases.
	// Survives process crashes, not machine crashes.
	FsyncNone
)

// ParseFsyncMode maps the config/flag spelling to a FsyncMode. The empty
// string means the default (batch).
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "", "batch":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync_mode %q (want always, batch, or none)", s)
}

func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	default:
		return "batch"
	}
}

// Record is one ordered apply: the originating node, its per-origin
// sequence number, and the raw encoded op exactly as it was delivered.
// Replay decodes the payload with the same codec the wire uses.
type Record struct {
	Origin  uint32
	Seq     uint64
	Payload []byte
}

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

// Log is the per-ring-replica durability handle.
//
// Append and SaveSnapshot may be called concurrently with each other and
// with LogBytes; Recover is called once, before the first Append.
type Log interface {
	// Append durably logs one ordered apply (durability subject to the
	// backend's fsync mode).
	Append(Record) error
	// AppendBatch logs a group of records as one write and, under
	// FsyncAlways, one fsync — the group-commit path. The dds write
	// coalescer hands it a single record whose payload is a multi-op
	// frame; Recover returns batch-appended records exactly like
	// individually appended ones (the payload shape is the caller's).
	AppendBatch([]Record) error
	// AppendBatchDurable is AppendBatch with the durability wait
	// decoupled from the append: the call returns once the group is in
	// the log's write path. pending=true means done will be invoked
	// exactly once, from another goroutine, when the group is durable —
	// under FsyncAlways that is after its fsync, and groups awaiting the
	// same sync share ONE fsync (log-level group commit across frames).
	// pending=false means the group is already as durable as the mode
	// makes it and done is never invoked. On a non-nil error done is
	// never invoked either.
	AppendBatchDurable(recs []Record, done func(error)) (pending bool, err error)
	// SaveSnapshot atomically replaces the snapshot with state (an
	// encoded dds snapshotState) and truncates the record tail it
	// covers. A crash between the two leaves stale tail records, which
	// replay filters out by sequence.
	SaveSnapshot(state []byte) error
	// Recover returns the current snapshot (nil if none) and the record
	// tail appended since it was taken. A torn or corrupt tail is
	// truncated at the first bad record, not treated as an error.
	Recover() (snap []byte, tail []Record, err error)
	// LogBytes is the encoded size of the record tail — the compaction
	// trigger compares it against snapshot_every_bytes.
	LogBytes() int64
	// Sync forces buffered appends to stable storage regardless of mode.
	Sync() error
	Close() error
}

// RoutingMeta is the minimal routing state a node must remember to
// restart into the right shape: which rings it hosted and at what epoch.
// Without it a restart would respawn the boot-time ring set at epoch 1
// and fight the survivors' routing table.
type RoutingMeta struct {
	Epoch uint64 `json:"epoch"`
	Rings []int  `json:"rings"`
}

// Backend hands out per-ring Logs and persists routing metadata. One
// Backend corresponds to one node's wal_dir.
type Backend interface {
	// Ring returns the Log for ring id, creating it on first use.
	// Reopening a previously closed ring's Log (in-process restart)
	// returns a handle over the same durable state.
	Ring(id int) (Log, error)
	SaveRouting(RoutingMeta) error
	// LoadRouting reports ok=false when no routing metadata has been
	// saved yet (fresh directory).
	LoadRouting() (RoutingMeta, bool, error)
	Close() error
}

// recordOverhead approximates the on-disk framing cost per record; the
// in-memory backend uses it too so LogBytes-driven compaction behaves the
// same under test.
const recordOverhead = 21

// Memory is the in-memory Backend. State survives Close and re-Ring
// within the process, which is exactly what the simnet crash-restart
// tests need: the "disk" outlives the crashed node object.
type Memory struct {
	mu      sync.Mutex
	logs    map[int]*memLog
	meta    RoutingMeta
	hasMeta bool
}

// NewMemory returns an empty in-memory Backend.
func NewMemory() *Memory { return &Memory{logs: make(map[int]*memLog)} }

// Ring implements Backend.
func (m *Memory) Ring(id int) (Log, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.logs[id]
	if !ok {
		l = &memLog{}
		m.logs[id] = l
	}
	l.mu.Lock()
	l.closed = false
	l.mu.Unlock()
	return l, nil
}

// SaveRouting implements Backend.
func (m *Memory) SaveRouting(meta RoutingMeta) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	meta.Rings = append([]int(nil), meta.Rings...)
	sort.Ints(meta.Rings)
	m.meta, m.hasMeta = meta, true
	return nil
}

// LoadRouting implements Backend.
func (m *Memory) LoadRouting() (RoutingMeta, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	meta := m.meta
	meta.Rings = append([]int(nil), m.meta.Rings...)
	return meta, m.hasMeta, nil
}

// Close implements Backend. The state is retained; a subsequent Ring
// reopens it.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, l := range m.logs {
		_ = l.Close()
	}
	return nil
}

type memLog struct {
	mu     sync.Mutex
	snap   []byte
	tail   []Record
	bytes  int64
	closed bool
}

func (l *memLog) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	r.Payload = append([]byte(nil), r.Payload...)
	l.tail = append(l.tail, r)
	l.bytes += int64(len(r.Payload)) + recordOverhead
	return nil
}

func (l *memLog) AppendBatch(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for _, r := range recs {
		r.Payload = append([]byte(nil), r.Payload...)
		l.tail = append(l.tail, r)
		l.bytes += int64(len(r.Payload)) + recordOverhead
	}
	return nil
}

// AppendBatchDurable implements Log; memory is "durable" the moment the
// append lands, so the call never pends.
func (l *memLog) AppendBatchDurable(recs []Record, done func(error)) (bool, error) {
	return false, l.AppendBatch(recs)
}

func (l *memLog) SaveSnapshot(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.snap = append([]byte(nil), state...)
	l.tail = nil
	l.bytes = 0
	return nil
}

func (l *memLog) Recover() ([]byte, []Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, nil, ErrClosed
	}
	snap := append([]byte(nil), l.snap...)
	if l.snap == nil {
		snap = nil
	}
	tail := make([]Record, len(l.tail))
	for i, r := range l.tail {
		tail[i] = Record{Origin: r.Origin, Seq: r.Seq, Payload: append([]byte(nil), r.Payload...)}
	}
	return snap, tail, nil
}

func (l *memLog) LogBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

func (l *memLog) Sync() error { return nil }

func (l *memLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}
