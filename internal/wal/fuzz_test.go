package wal

import (
	"bytes"
	"testing"
)

// FuzzWALRecord feeds arbitrary bytes through the record decoder and
// re-encodes whatever decodes, asserting the codec never panics, never
// over-consumes, and round-trips exactly.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{recMagic})
	f.Add(EncodeRecord(nil, Record{Origin: 1, Seq: 2, Payload: []byte("seed")}))
	f.Add(EncodeRecord(nil, Record{Origin: 0xFFFFFFFF, Seq: 1 << 60, Payload: nil}))
	corrupt := EncodeRecord(nil, Record{Origin: 9, Seq: 9, Payload: []byte("flip me")})
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n := DecodeRecord(data)
		if n == 0 {
			return
		}
		if n < recHdrLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc := EncodeRecord(nil, r)
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("round-trip mismatch: decoded %+v, re-encoded %x != %x", r, enc, data[:n])
		}
		r2, n2 := DecodeRecord(enc)
		if n2 != len(enc) || r2.Origin != r.Origin || r2.Seq != r.Seq || !bytes.Equal(r2.Payload, r.Payload) {
			t.Fatalf("second decode diverged: %+v vs %+v", r2, r)
		}
	})
}
