//go:build linux

package wal

import (
	"os"
	"syscall"
)

// datasync flushes a log file's appended data — and the metadata needed
// to reach it, like the extended file size — without forcing untouched
// metadata such as timestamps to disk. On the append-only hot path this
// is measurably cheaper than a full fsync and gives the same crash
// guarantee for record replay.
func datasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}
