package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/stats"
)

// Options configures a file-backed Backend.
type Options struct {
	// Fsync is the sync policy for appends. Zero value is FsyncBatch.
	Fsync FsyncMode
	// BatchEvery is the sync interval under FsyncBatch. Zero means 5ms.
	BatchEvery time.Duration
	// Stats, when non-nil, receives wal_appends_total / wal_fsyncs_total
	// / wal_batch_appends_total / snapshot_compactions_total.
	Stats *stats.Registry
}

// Files is the file-backed Backend: one directory per node, one
// wal+snapshot file pair per ring, plus routing.json.
type Files struct {
	dir string
	opt Options
	mu  sync.Mutex
	ln  map[int]*fileLog
}

// Open creates (if needed) and opens a wal directory.
func Open(dir string, opt Options) (*Files, error) {
	if opt.BatchEvery <= 0 {
		opt.BatchEvery = 5 * time.Millisecond
	}
	if opt.Stats == nil {
		opt.Stats = stats.NewRegistry()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	return &Files{dir: dir, opt: opt, ln: make(map[int]*fileLog)}, nil
}

// Dir returns the backing directory path.
func (b *Files) Dir() string { return b.dir }

// Ring implements Backend.
func (b *Files) Ring(id int) (Log, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if l, ok := b.ln[id]; ok && !l.isClosed() {
		return l, nil
	}
	l, err := openFileLog(b.dir, id, b.opt)
	if err != nil {
		return nil, err
	}
	b.ln[id] = l
	return l, nil
}

// SaveRouting implements Backend: atomic write-temp + rename of
// routing.json so a crash never leaves a torn file.
func (b *Files) SaveRouting(meta RoutingMeta) error {
	buf, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	path := filepath.Join(b.dir, "routing.json")
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(b.dir)
}

// LoadRouting implements Backend.
func (b *Files) LoadRouting() (RoutingMeta, bool, error) {
	buf, err := os.ReadFile(filepath.Join(b.dir, "routing.json"))
	if errors.Is(err, os.ErrNotExist) {
		return RoutingMeta{}, false, nil
	}
	if err != nil {
		return RoutingMeta{}, false, err
	}
	var meta RoutingMeta
	if err := json.Unmarshal(buf, &meta); err != nil {
		return RoutingMeta{}, false, fmt.Errorf("wal: routing.json: %w", err)
	}
	return meta, true, nil
}

// Close implements Backend.
func (b *Files) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var first error
	for _, l := range b.ln {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Record framing: magic byte, little-endian u32 payload length, u32
// CRC32-IEEE over origin|seq|payload, u32 origin, u64 seq, payload.
const (
	recMagic   = 0x57 // 'W'
	recHdrLen  = 1 + 4 + 4 + 4 + 8
	maxPayload = 64 << 20
	snapMagic  = "RCSNAP1\n"
)

// EncodeRecord appends r's wire form to dst and returns the result. It is
// exported so the fuzz harness can round-trip the codec.
func EncodeRecord(dst []byte, r Record) []byte {
	var hdr [recHdrLen]byte
	hdr[0] = recMagic
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(r.Payload)))
	crc := crc32.NewIEEE()
	var meta [12]byte
	binary.LittleEndian.PutUint32(meta[0:4], r.Origin)
	binary.LittleEndian.PutUint64(meta[4:12], r.Seq)
	crc.Write(meta[:])
	crc.Write(r.Payload)
	binary.LittleEndian.PutUint32(hdr[5:9], crc.Sum32())
	copy(hdr[9:21], meta[:])
	dst = append(dst, hdr[:]...)
	return append(dst, r.Payload...)
}

// DecodeRecord decodes one record from the front of buf, returning the
// record and the number of bytes consumed. n == 0 means buf holds no
// complete valid record at its front (torn tail or corruption).
func DecodeRecord(buf []byte) (Record, int) {
	if len(buf) < recHdrLen || buf[0] != recMagic {
		return Record{}, 0
	}
	plen := binary.LittleEndian.Uint32(buf[1:5])
	if plen > maxPayload || int64(len(buf)) < int64(recHdrLen)+int64(plen) {
		return Record{}, 0
	}
	want := binary.LittleEndian.Uint32(buf[5:9])
	end := recHdrLen + int(plen)
	if crc32.ChecksumIEEE(buf[9:end]) != want {
		return Record{}, 0
	}
	r := Record{
		Origin:  binary.LittleEndian.Uint32(buf[9:13]),
		Seq:     binary.LittleEndian.Uint64(buf[13:21]),
		Payload: append([]byte(nil), buf[recHdrLen:end]...),
	}
	return r, end
}

type fileLog struct {
	mu      sync.Mutex
	path    string
	dir     string
	f       *os.File
	w       *bufio.Writer
	mode    FsyncMode
	bytes   int64
	dirty   bool
	closed  bool
	stop    chan struct{}
	done    chan struct{}
	scratch []byte

	// Pipelined group commit (FsyncAlways only): AppendBatchDurable
	// enqueues its durability callback here and kicks the syncer
	// goroutine, which flushes once and fsyncs once for every callback
	// pending at that moment — so the appender (the replica's event
	// loop) never stalls on the disk, and concurrent groups share syncs.
	syncPend []func(error)
	syncKick chan struct{}

	// Close runs exactly once; closeDone gates concurrent and repeated
	// Close calls so every caller returns only after teardown finished
	// (ticker goroutine reaped, buffer flushed, file closed).
	closeOnce sync.Once
	closeDone chan struct{}
	closeErr  error

	appends, fsyncs, batchAppends, compactions *stats.Counter
}

func openFileLog(dir string, id int, opt Options) (*fileLog, error) {
	path := filepath.Join(dir, fmt.Sprintf("ring-%03d.wal", id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	l := &fileLog{
		path:         path,
		dir:          dir,
		f:            f,
		w:            bufio.NewWriterSize(f, 64<<10),
		mode:         opt.Fsync,
		bytes:        st.Size(),
		closeDone:    make(chan struct{}),
		appends:      opt.Stats.Counter(stats.MetricWALAppends),
		fsyncs:       opt.Stats.Counter(stats.MetricWALFsyncs),
		batchAppends: opt.Stats.Counter(stats.MetricWALBatchAppends),
		compactions:  opt.Stats.Counter(stats.MetricSnapshotCompactions),
	}
	switch l.mode {
	case FsyncBatch:
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.batchLoop(opt.BatchEvery)
	case FsyncAlways:
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		l.syncKick = make(chan struct{}, 1)
		go l.syncLoop()
	}
	return l, nil
}

func (l *fileLog) snapPath() string {
	return l.path[:len(l.path)-len(".wal")] + ".snap"
}

func (l *fileLog) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

func (l *fileLog) batchLoop(every time.Duration) {
	defer close(l.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				l.flushSyncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// syncLoop is the FsyncAlways group-commit syncer. Each kick flushes the
// buffer under the lock, then fsyncs OUTSIDE it — appends proceed while
// the disk works — and completes every callback that was pending at
// flush time with one sync. Callbacks run on this goroutine, never under
// l.mu, so they may take arbitrary caller locks.
func (l *fileLog) syncLoop() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			return
		case <-l.syncKick:
			l.mu.Lock()
			if l.closed || len(l.syncPend) == 0 {
				l.mu.Unlock()
				continue
			}
			pend := l.syncPend
			l.syncPend = nil
			err := l.w.Flush()
			l.mu.Unlock()
			if err == nil {
				if err = datasync(l.f); err == nil {
					l.fsyncs.Add(1)
				}
			}
			for _, done := range pend {
				done(err)
			}
		}
	}
}

// flushSyncLocked flushes the buffer and fsyncs; errors are sticky only
// insofar as the next explicit Sync/Append surfaces them.
func (l *fileLog) flushSyncLocked() {
	if l.w.Flush() == nil && datasync(l.f) == nil {
		l.fsyncs.Add(1)
		l.dirty = false
	}
}

func (l *fileLog) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.scratch = EncodeRecord(l.scratch[:0], r)
	if _, err := l.w.Write(l.scratch); err != nil {
		return err
	}
	l.bytes += int64(len(l.scratch))
	l.appends.Add(1)
	switch l.mode {
	case FsyncAlways:
		if err := l.w.Flush(); err != nil {
			return err
		}
		if err := datasync(l.f); err != nil {
			return err
		}
		l.fsyncs.Add(1)
	default:
		l.dirty = true
	}
	return nil
}

// AppendBatch is the group-commit append: every record is encoded into
// one buffered write and, under FsyncAlways, the whole group rides a
// single fsync — K ordered writes cost one durability round-trip.
func (l *fileLog) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.scratch = l.scratch[:0]
	for _, r := range recs {
		l.scratch = EncodeRecord(l.scratch, r)
	}
	if _, err := l.w.Write(l.scratch); err != nil {
		return err
	}
	l.bytes += int64(len(l.scratch))
	l.appends.Add(int64(len(recs)))
	l.batchAppends.Add(1)
	switch l.mode {
	case FsyncAlways:
		if err := l.w.Flush(); err != nil {
			return err
		}
		if err := datasync(l.f); err != nil {
			return err
		}
		l.fsyncs.Add(1)
	default:
		l.dirty = true
	}
	return nil
}

// AppendBatchDurable implements Log. The group is encoded and buffered
// inline; under FsyncAlways the durability callback is handed to the
// syncer (pending=true) so the caller never waits on the disk, while the
// other modes are already at their durability point when the buffered
// write lands (pending=false, done never invoked).
func (l *fileLog) AppendBatchDurable(recs []Record, done func(error)) (bool, error) {
	if len(recs) == 0 {
		return false, nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false, ErrClosed
	}
	l.scratch = l.scratch[:0]
	for _, r := range recs {
		l.scratch = EncodeRecord(l.scratch, r)
	}
	if _, err := l.w.Write(l.scratch); err != nil {
		l.mu.Unlock()
		return false, err
	}
	l.bytes += int64(len(l.scratch))
	l.appends.Add(int64(len(recs)))
	l.batchAppends.Add(1)
	if l.mode != FsyncAlways {
		l.dirty = true
		l.mu.Unlock()
		return false, nil
	}
	l.syncPend = append(l.syncPend, done)
	l.mu.Unlock()
	select {
	case l.syncKick <- struct{}{}:
	default:
	}
	return true, nil
}

func (l *fileLog) SaveSnapshot(state []byte) error {
	pend, err := l.saveSnapshotLocked(state)
	if len(pend) > 0 {
		// The snapshot durably covers every record the pending groups
		// appended: complete them off this goroutine so the callbacks
		// (which may take caller locks) never run under l.mu or inside
		// the appender's critical section.
		go func() {
			for _, done := range pend {
				done(nil)
			}
		}()
	}
	return err
}

func (l *fileLog) saveSnapshotLocked(state []byte) ([]func(error), error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	buf := make([]byte, 0, len(snapMagic)+4+len(state))
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(state))
	buf = append(buf, state...)
	tmp := l.snapPath() + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, l.snapPath()); err != nil {
		return nil, err
	}
	if err := syncDir(l.dir); err != nil {
		return nil, err
	}
	// The snapshot covers everything buffered or on disk: drop the
	// buffer and truncate the log. A crash mid-way leaves stale records
	// that replay filters by sequence.
	l.w.Reset(io.Discard)
	if err := l.f.Truncate(0); err != nil {
		return nil, err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	l.w.Reset(l.f)
	l.bytes = 0
	l.dirty = false
	l.compactions.Add(1)
	// Until the truncate the pending groups' bytes were in the dropped
	// buffer; now their durability IS the snapshot.
	pend := l.syncPend
	l.syncPend = nil
	return pend, nil
}

func (l *fileLog) Recover() ([]byte, []Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, nil, ErrClosed
	}
	var snap []byte
	if buf, err := os.ReadFile(l.snapPath()); err == nil {
		if len(buf) >= len(snapMagic)+4 && string(buf[:len(snapMagic)]) == snapMagic {
			state := buf[len(snapMagic)+4:]
			if crc32.ChecksumIEEE(state) == binary.LittleEndian.Uint32(buf[len(snapMagic):len(snapMagic)+4]) {
				snap = append([]byte(nil), state...)
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	raw, err := os.ReadFile(l.path)
	if err != nil {
		return nil, nil, err
	}
	var tail []Record
	off := 0
	for off < len(raw) {
		r, n := DecodeRecord(raw[off:])
		if n == 0 {
			break
		}
		tail = append(tail, r)
		off += n
	}
	if off < len(raw) {
		// Torn or corrupt tail: drop it so new appends start at a clean
		// boundary.
		if err := l.f.Truncate(int64(off)); err != nil {
			return nil, nil, err
		}
	}
	if _, err := l.f.Seek(int64(off), io.SeekStart); err != nil {
		return nil, nil, err
	}
	l.w.Reset(l.f)
	l.bytes = int64(off)
	return snap, tail, nil
}

func (l *fileLog) LogBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

func (l *fileLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := datasync(l.f); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	l.dirty = false
	return nil
}

func (l *fileLog) Close() error {
	l.closeOnce.Do(func() {
		// Reap the batch ticker FIRST: once its goroutine has exited, no
		// tick can interleave with the final flush or touch the file
		// mid-teardown. (The old order closed the file before stopping
		// the loop and let a second concurrent Close return while the
		// goroutine was still running.)
		if l.stop != nil {
			close(l.stop)
			<-l.done
		}
		l.mu.Lock()
		l.closed = true
		pend := l.syncPend
		l.syncPend = nil
		err := l.w.Flush()
		if l.mode != FsyncNone {
			if serr := l.f.Sync(); err == nil {
				err = serr
			}
		}
		// Groups the reaped syncer never got to: the final flush+sync
		// above is their durability point. Complete them off this
		// goroutine (callbacks may take caller locks).
		if len(pend) > 0 {
			perr := err
			go func() {
				for _, done := range pend {
					done(perr)
				}
			}()
		}
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.closeErr = err
		l.mu.Unlock()
		close(l.closeDone)
	})
	// Every caller — first, repeated, or concurrent — returns only after
	// teardown completed.
	<-l.closeDone
	return l.closeErr
}

func writeFileSync(path string, buf []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed file is durable. Some
// platforms refuse to fsync directories; that is not fatal.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	_ = d.Sync()
	return d.Close()
}
