package config

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "raincored.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadOverlaysDefaults(t *testing.T) {
	p := write(t, `{
	  "mode": "gateway",
	  "node": {"id": 7, "listen": ["127.0.0.1:7007"], "rings": 4,
	           "peers": {"2": ["127.0.0.1:7002", "10.0.0.2:7002"]}},
	  "gateway": {"listen": "127.0.0.1:9007", "read_mode": "bounded",
	              "cache_ttl_ms": 5, "coalesce": false}
	}`)
	cfg, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != ModeGateway || cfg.Node.ID != 7 || cfg.Node.Rings != 4 {
		t.Fatalf("file fields lost: %+v", cfg)
	}
	if cfg.Gateway.Coalesce {
		t.Fatal("explicit coalesce=false was overridden")
	}
	if got := cfg.Gateway.CacheTTL(); got.Milliseconds() != 5 {
		t.Fatalf("cache ttl = %v", got)
	}
	// Fields the file does not mention keep their defaults.
	if cfg.Node.TokenHoldMS != 100 || cfg.Node.HungryMS != 500 {
		t.Fatalf("defaults lost: %+v", cfg.Node)
	}
	if cfg.Gateway.DefaultTimeoutMS != 2000 || cfg.Gateway.MaxStalenessMS != 50 {
		t.Fatalf("gateway defaults lost: %+v", cfg.Gateway)
	}
	if len(cfg.Node.Peers["2"]) != 2 {
		t.Fatalf("peers lost: %+v", cfg.Node.Peers)
	}
}

func TestLoadRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":       `{"node": {"id": 1}, "typo_knob": true}`,
		"bad mode":            `{"mode": "proxy"}`,
		"gateway sans listen": `{"mode": "gateway"}`,
		"bad read mode":       `{"gateway": {"read_mode": "strong"}}`,
		"bad peer key":        `{"node": {"peers": {"zero": ["a:1"]}}}`,
		"zero peer id":        `{"node": {"peers": {"0": ["a:1"]}}}`,
		"empty listen":        `{"node": {"listen": []}}`,
		"not json":            `token_hold = 100`,
	}
	for name, body := range cases {
		if _, err := Load(write(t, body)); err == nil {
			t.Errorf("%s: Load accepted %q", name, body)
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("Load accepted a missing file")
	}
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}
