// Package config is raincored's file-based configuration: one JSON
// document describing a node in either deployment mode — an ordered-core
// member, or a gateway fronting the core with the HTTP/JSON access tier.
//
// Precedence is flags > file > defaults: Default() supplies every
// default, Load overlays a file on top of it (absent fields keep their
// defaults), and the daemon applies explicitly-set command-line flags
// last (via flag.Visit, so an untouched flag never shadows the file).
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Mode names the two deployment shapes of raincored.
const (
	// ModeMember is an ordered-core cluster member: rings, replicas,
	// transaction coordinator, optional admin surface.
	ModeMember = "member"
	// ModeGateway is a member that additionally serves the stateless
	// HTTP/JSON access tier (request coalescing, /metrics, /healthz) for
	// fleets of external clients.
	ModeGateway = "gateway"
)

// Config is the full raincored configuration document.
type Config struct {
	// Mode selects the deployment shape: "member" (default) or
	// "gateway".
	Mode string `json:"mode"`
	// Node configures cluster membership (both modes join the core).
	Node Node `json:"node"`
	// Gateway configures the access tier; consulted only in gateway
	// mode.
	Gateway Gateway `json:"gateway"`
}

// Node mirrors raincored's member flags.
type Node struct {
	// ID is this node's non-zero cluster identity.
	ID uint32 `json:"id"`
	// Listen lists the UDP listen addresses (redundant links).
	Listen []string `json:"listen"`
	// Peers maps peer node IDs (decimal strings, JSON keys) to their
	// address lists.
	Peers map[string][]string `json:"peers"`
	// Rings is the initial shard count.
	Rings int `json:"rings"`
	// TokenHoldMS, HungryMS and BodyodorMS are the ring protocol timers
	// in milliseconds.
	TokenHoldMS int `json:"token_hold_ms"`
	HungryMS    int `json:"hungry_ms"`
	BodyodorMS  int `json:"bodyodor_ms"`
	// Quorum is the minimum membership before self-shutdown (0 off).
	Quorum int `json:"quorum"`
	// AnnounceMS is the heartbeat multicast interval (0 disables).
	AnnounceMS int `json:"announce_ms"`
	// StatsMS is the stats log interval (0 disables).
	StatsMS int `json:"stats_ms"`
	// Admin is the admin HTTP address (empty disables).
	Admin string `json:"admin"`
	// WalDir enables the durability subsystem — per-ring write-ahead
	// logs, snapshot compaction and crash-restart recovery — under this
	// directory (empty disables).
	WalDir string `json:"wal_dir"`
	// FsyncMode selects the WAL durability point: "always" fsyncs every
	// append, "batch" (default) fsyncs on a short timer, "none" leaves
	// flushing to the OS.
	FsyncMode string `json:"fsync_mode"`
	// SnapshotEveryBytes compacts a ring's WAL into a snapshot once the
	// log exceeds this size (default 4 MiB).
	SnapshotEveryBytes int64 `json:"snapshot_every_bytes"`
	// WriteBatchDisabled turns the per-shard write coalescer off: every
	// Set/Delete submits its own ordered frame, the pre-batching write
	// path. Batching is on by default.
	WriteBatchDisabled bool `json:"write_batch_disabled"`
	// WriteBatchMaxOps flushes a coalesced write frame once this many
	// ops ride it (default 128).
	WriteBatchMaxOps int `json:"write_batch_max_ops"`
	// WriteBatchMaxBytes flushes a coalesced write frame once its
	// encoding reaches this size (default 48 KiB).
	WriteBatchMaxBytes int `json:"write_batch_max_bytes"`
	// WriteBatchLingerMS is the longest a buffered write waits for
	// company before flushing anyway. 0 (default) is the self-clocking
	// mode: the first write of a quiet shard flushes immediately and
	// only concurrent writes coalesce — single-writer latency unchanged.
	WriteBatchLingerMS int `json:"write_batch_linger_ms"`
}

// Gateway configures the HTTP/JSON access tier.
type Gateway struct {
	// Listen is the gateway's HTTP address (required in gateway mode).
	Listen string `json:"listen"`
	// DefaultTimeoutMS bounds each request when no ?timeout= is given.
	DefaultTimeoutMS int `json:"default_timeout_ms"`
	// MaxTimeoutMS caps a client's ?timeout= request (0 = no cap).
	MaxTimeoutMS int `json:"max_timeout_ms"`
	// Coalesce enables fan-in of concurrent fetches for the same
	// key×mode into one upstream read.
	Coalesce bool `json:"coalesce"`
	// CacheTTLMS is the optional per-entry read micro-cache TTL in
	// milliseconds (0 disables the cache).
	CacheTTLMS int `json:"cache_ttl_ms"`
	// ReadMode is the default read consistency served when a request
	// names none: "eventual", "bounded", "linearizable" or "lease".
	ReadMode string `json:"read_mode"`
	// MaxStalenessMS parameterizes the bounded mode.
	MaxStalenessMS int `json:"max_staleness_ms"`
	// LeaseMS parameterizes the lease mode.
	LeaseMS int `json:"lease_ms"`
	// MaxInflight sheds load with 429 once this many requests are in
	// flight (0 = unlimited).
	MaxInflight int `json:"max_inflight"`
}

// Default returns the full default configuration — the values raincored
// runs with when neither file nor flags say otherwise. The member
// defaults match the historical flag defaults.
func Default() Config {
	return Config{
		Mode: ModeMember,
		Node: Node{
			Listen:             []string{"127.0.0.1:0"},
			Rings:              1,
			TokenHoldMS:        100,
			HungryMS:           500,
			BodyodorMS:         1000,
			AnnounceMS:         2000,
			StatsMS:            10000,
			FsyncMode:          "batch",
			SnapshotEveryBytes: 4 << 20,
		},
		Gateway: Gateway{
			DefaultTimeoutMS: 2000,
			MaxTimeoutMS:     30000,
			Coalesce:         true,
			ReadMode:         "eventual",
			MaxStalenessMS:   50,
			LeaseMS:          100,
		},
	}
}

// Load reads the JSON document at path over the defaults: fields the
// file does not mention keep their Default() values. Unknown fields are
// rejected — a typo'd knob must not silently fall back to a default.
func Load(path string) (Config, error) {
	cfg := Default()
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, fmt.Errorf("config: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("config %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("config %s: %w", path, err)
	}
	return cfg, nil
}

// Validate rejects configurations the daemon could not act on.
func (c Config) Validate() error {
	switch c.Mode {
	case ModeMember, ModeGateway:
	default:
		return fmt.Errorf("mode %q: want %q or %q", c.Mode, ModeMember, ModeGateway)
	}
	if c.Mode == ModeGateway && c.Gateway.Listen == "" {
		return fmt.Errorf("gateway mode needs gateway.listen")
	}
	switch c.Gateway.ReadMode {
	case "", "eventual", "bounded", "linearizable", "lease":
	default:
		return fmt.Errorf("gateway.read_mode %q: want eventual, bounded, linearizable or lease", c.Gateway.ReadMode)
	}
	if len(c.Node.Listen) == 0 {
		return fmt.Errorf("node.listen must name at least one address")
	}
	switch c.Node.FsyncMode {
	case "", "always", "batch", "none":
	default:
		return fmt.Errorf("node.fsync_mode %q: want always, batch or none", c.Node.FsyncMode)
	}
	if c.Node.WriteBatchMaxOps < 0 || c.Node.WriteBatchMaxBytes < 0 || c.Node.WriteBatchLingerMS < 0 {
		return fmt.Errorf("node.write_batch_* values must be non-negative")
	}
	for id := range c.Node.Peers {
		var n uint32
		if _, err := fmt.Sscanf(id, "%d", &n); err != nil || n == 0 {
			return fmt.Errorf("node.peers key %q: want a non-zero decimal node ID", id)
		}
	}
	return nil
}

// DefaultTimeout returns the gateway's default per-request deadline.
func (g Gateway) DefaultTimeout() time.Duration {
	return time.Duration(g.DefaultTimeoutMS) * time.Millisecond
}

// MaxTimeout returns the cap on client-requested deadlines.
func (g Gateway) MaxTimeout() time.Duration {
	return time.Duration(g.MaxTimeoutMS) * time.Millisecond
}

// CacheTTL returns the micro-cache TTL (0 = disabled).
func (g Gateway) CacheTTL() time.Duration {
	return time.Duration(g.CacheTTLMS) * time.Millisecond
}

// MaxStaleness returns the bounded-mode staleness bound.
func (g Gateway) MaxStaleness() time.Duration {
	return time.Duration(g.MaxStalenessMS) * time.Millisecond
}

// Lease returns the lease-mode window.
func (g Gateway) Lease() time.Duration {
	return time.Duration(g.LeaseMS) * time.Millisecond
}
