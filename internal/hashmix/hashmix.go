// Package hashmix holds the 64-bit avalanche finalizer shared by the
// repo's hashing call sites (rainwall's rendezvous weights, the dds
// consistent-hash ring). One copy keeps the mixing behavior from drifting
// between packages.
package hashmix

// Mix is the splitmix64 finalizer: full-avalanche mixing of a 64-bit
// value, so even near-identical inputs (sequential keys, short strings)
// spread uniformly over the whole range.
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
