//go:build !go1.24

package gateway

import "net/http"

// enableH2C is a no-op before Go 1.24: net/http gained the Protocols
// knob (and with it cleartext HTTP/2) in 1.24, so older toolchains
// serve the gateway over HTTP/1.1 only.
func enableH2C(*http.Server) {}
