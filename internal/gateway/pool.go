package gateway

import (
	"context"
	"sync/atomic"

	"repro/internal/dds"
)

// Backend is the slice of the cluster surface the gateway fronts. It is
// exactly the shape of the facade's data operations, so a
// *raincore.Cluster satisfies it structurally — no adapter — and tests
// substitute fakes.
type Backend interface {
	// Get reads a key under the consistency mode the options select.
	Get(ctx context.Context, key string, opts ...dds.ReadOption) ([]byte, bool, error)
	// Set writes key=val.
	Set(ctx context.Context, key string, val []byte) error
	// Delete removes a key.
	Delete(ctx context.Context, key string) error
	// Healthy reports whether the member behind this handle is serving.
	Healthy() bool
	// Joined reports whether the member behind this handle has assembled
	// with its configured peers. The gateway rejects writes (503) while
	// it is false: a member still in its pre-merge singleton group would
	// accept writes the lowest-ID-wins group merge silently discards.
	Joined() bool
}

// Pool round-robins requests over several cluster handles — a gateway
// process holding one Open per core member spreads its load instead of
// funneling everything through a single member's local replica. Pool
// itself satisfies Backend, so a single-handle deployment and a pooled
// one wire into the gateway identically.
type Pool struct {
	backends []Backend
	next     atomic.Uint64
}

// NewPool builds a round-robin pool over the handles. It returns nil if
// no handle is given; a pool of one is valid (and adds one atomic add
// per operation).
func NewPool(backends ...Backend) *Pool {
	if len(backends) == 0 {
		return nil
	}
	return &Pool{backends: backends}
}

// pick returns the next handle in rotation, preferring a healthy one: an
// unhealthy pick advances past at most len(backends) handles before
// giving up and returning the original (the request then fails with the
// member's own error rather than a synthetic one).
func (p *Pool) pick() Backend {
	n := len(p.backends)
	first := p.backends[int(p.next.Add(1)-1)%n]
	if first.Healthy() {
		return first
	}
	for i := 0; i < n-1; i++ {
		if b := p.backends[int(p.next.Add(1)-1)%n]; b.Healthy() {
			return b
		}
	}
	return first
}

// Get implements Backend by delegating to the next handle in rotation.
func (p *Pool) Get(ctx context.Context, key string, opts ...dds.ReadOption) ([]byte, bool, error) {
	return p.pick().Get(ctx, key, opts...)
}

// Set implements Backend by delegating to the next handle in rotation.
func (p *Pool) Set(ctx context.Context, key string, val []byte) error {
	return p.pick().Set(ctx, key, val)
}

// Delete implements Backend by delegating to the next handle in rotation.
func (p *Pool) Delete(ctx context.Context, key string) error {
	return p.pick().Delete(ctx, key)
}

// Healthy reports whether any pooled handle is healthy.
func (p *Pool) Healthy() bool {
	for _, b := range p.backends {
		if b.Healthy() {
			return true
		}
	}
	return false
}

// Joined reports whether every pooled handle has assembled with its
// peers. Writes round-robin over the handles, so one pre-merge member
// in the pool can still swallow a write — the pool is joined only when
// all of its members are.
func (p *Pool) Joined() bool {
	for _, b := range p.backends {
		if !b.Joined() {
			return false
		}
	}
	return true
}
