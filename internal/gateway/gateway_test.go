package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dds"
	"repro/internal/rcerr"
	"repro/internal/stats"
)

// fakeBackend is an in-memory Backend whose reads can be gated (block
// until the test releases them) and forced to fail.
type fakeBackend struct {
	gate     chan struct{} // non-nil: Get blocks until closed (or ctx done)
	started  chan struct{} // Get announces itself here (buffered)
	err      error         // non-nil: Get fails with this after the gate
	down     atomic.Bool
	unjoined atomic.Bool // true: member has not merged with its group yet

	mu   sync.Mutex
	data map[string][]byte
	gets atomic.Int64
	sets atomic.Int64
	dels atomic.Int64
}

func newFake() *fakeBackend {
	return &fakeBackend{data: make(map[string][]byte), started: make(chan struct{}, 256)}
}

func (f *fakeBackend) Get(ctx context.Context, key string, opts ...dds.ReadOption) ([]byte, bool, error) {
	f.gets.Add(1)
	select {
	case f.started <- struct{}{}:
	default:
	}
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	if f.err != nil {
		return nil, false, f.err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.data[key]
	return v, ok, nil
}

func (f *fakeBackend) Set(ctx context.Context, key string, val []byte) error {
	f.sets.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.data[key] = val
	return nil
}

func (f *fakeBackend) Delete(ctx context.Context, key string) error {
	f.dels.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.data, key)
	return nil
}

func (f *fakeBackend) Healthy() bool { return !f.down.Load() }

func (f *fakeBackend) Joined() bool { return !f.unjoined.Load() }

func mustGateway(t *testing.T, o Options) *Gateway {
	t.Helper()
	g, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func do(g *Gateway, method, target string, body []byte) *httptest.ResponseRecorder {
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	g.Handler().ServeHTTP(w, r)
	return w
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// TestCoalescingSingleUpstream is the tentpole contract: N concurrent
// GETs of one hot key perform exactly one upstream read, with the other
// N-1 fanned in on the leader's flight. The fan-in is made
// deterministic by gating the upstream read and waiting until all
// followers have joined the flight before releasing it.
func TestCoalescingSingleUpstream(t *testing.T) {
	const n = 32
	fb := newFake()
	fb.data["hot"] = []byte("v1")
	fb.gate = make(chan struct{})
	reg := stats.NewRegistry()
	g := mustGateway(t, Options{Backend: fb, Registry: reg, DefaultTimeout: 10 * time.Second})

	results := make(chan *httptest.ResponseRecorder, n)
	get := func() { results <- do(g, "GET", "/kv/hot?mode=linearizable", nil) }

	go get()
	<-fb.started // the leader is upstream, holding the flight open
	for i := 1; i < n; i++ {
		go get()
	}
	waitFor(t, "followers to fan in", func() bool { return g.co.fanins.Load() == n-1 })
	close(fb.gate)

	var coalesced int
	for i := 0; i < n; i++ {
		w := <-results
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body)
		}
		var resp getResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if string(resp.Value) != "v1" {
			t.Fatalf("value %q", resp.Value)
		}
		if resp.Coalesced {
			coalesced++
		}
	}
	if got := fb.gets.Load(); got != 1 {
		t.Fatalf("upstream reads = %d, want 1", got)
	}
	if coalesced != n-1 {
		t.Fatalf("coalesced responses = %d, want %d", coalesced, n-1)
	}
	if got := reg.Counter(stats.MetricGatewayCoalesced).Load(); got != n-1 {
		t.Fatalf("%s = %d, want %d", stats.MetricGatewayCoalesced, got, n-1)
	}
	if got := reg.Counter(stats.MetricGatewayUpstream).Load(); got != 1 {
		t.Fatalf("%s = %d, want 1", stats.MetricGatewayUpstream, got)
	}
}

// TestErrorFanOut: a retryable upstream failure reaches every waiter of
// the flight as 503 + Retry-After with a structured retryable body —
// the error taxonomy fans out exactly like a value does.
func TestErrorFanOut(t *testing.T) {
	const n = 16
	fb := newFake()
	fb.gate = make(chan struct{})
	fb.err = rcerr.New("replica resharding")
	g := mustGateway(t, Options{Backend: fb, DefaultTimeout: 10 * time.Second})

	results := make(chan *httptest.ResponseRecorder, n)
	go func() { results <- do(g, "GET", "/kv/hot", nil) }()
	<-fb.started
	for i := 1; i < n; i++ {
		go func() { results <- do(g, "GET", "/kv/hot", nil) }()
	}
	waitFor(t, "followers to fan in", func() bool { return g.co.fanins.Load() == n-1 })
	close(fb.gate)

	for i := 0; i < n; i++ {
		w := <-results
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503: %s", w.Code, w.Body)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatal("no Retry-After header on a retryable failure")
		}
		var body errorBody
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if !body.Retryable || body.Op != "get" || body.Key != "hot" {
			t.Fatalf("error body %+v", body)
		}
	}
	if got := fb.gets.Load(); got != 1 {
		t.Fatalf("upstream reads = %d, want 1", got)
	}
}

// TestMicroCache: with a TTL configured, a repeat read is served from
// the cache (no second upstream read), and a write through the gateway
// invalidates the entry.
func TestMicroCache(t *testing.T) {
	fb := newFake()
	fb.data["k"] = []byte("v1")
	reg := stats.NewRegistry()
	g := mustGateway(t, Options{Backend: fb, Registry: reg, CacheTTL: time.Minute})

	if w := do(g, "GET", "/kv/k", nil); w.Code != http.StatusOK {
		t.Fatalf("first get: %d %s", w.Code, w.Body)
	}
	w := do(g, "GET", "/kv/k", nil)
	var resp getResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatalf("second get not served from cache: %+v", resp)
	}
	if got := fb.gets.Load(); got != 1 {
		t.Fatalf("upstream reads = %d, want 1 (second was cached)", got)
	}
	if got := reg.Counter(stats.MetricGatewayCacheHits).Load(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}

	// A gateway-routed write invalidates; the next read goes upstream.
	if w := do(g, "PUT", "/kv/k", []byte("v2")); w.Code != http.StatusNoContent {
		t.Fatalf("put: %d %s", w.Code, w.Body)
	}
	w = do(g, "GET", "/kv/k", nil)
	var after getResponse
	if err := json.Unmarshal(w.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.Cached || string(after.Value) != "v2" {
		t.Fatalf("post-write read: %+v", after)
	}
	if got := fb.gets.Load(); got != 2 {
		t.Fatalf("upstream reads = %d, want 2", got)
	}
}

// TestDeadline: a request whose ?timeout= expires while upstream is
// slow answers 504 with a retryable body.
func TestDeadline(t *testing.T) {
	fb := newFake()
	fb.gate = make(chan struct{}) // never released before cleanup
	t.Cleanup(func() { close(fb.gate) })
	g := mustGateway(t, Options{Backend: fb, DefaultTimeout: 100 * time.Millisecond})

	w := do(g, "GET", "/kv/slow?timeout=20ms", nil)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body)
	}
	var body errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !body.Retryable {
		t.Fatalf("timeout should be retryable: %+v", body)
	}
}

// TestShed: beyond MaxInflight concurrent requests the gateway answers
// 429 with Retry-After instead of queueing.
func TestShed(t *testing.T) {
	fb := newFake()
	fb.gate = make(chan struct{})
	t.Cleanup(func() { close(fb.gate) })
	reg := stats.NewRegistry()
	g := mustGateway(t, Options{Backend: fb, Registry: reg, MaxInflight: 1, DefaultTimeout: 10 * time.Second})

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- do(g, "GET", "/kv/a", nil) }()
	<-fb.started
	waitFor(t, "inflight gauge", func() bool {
		return reg.Gauge(stats.GaugeGatewayInflight).Load() == 1
	})

	w := do(g, "GET", "/kv/b", nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("no Retry-After on shed")
	}
}

// TestWritesAndTxn covers the write paths and the txn endpoint
// round-trip, including 501 when no TxnFunc is wired.
func TestWritesAndTxn(t *testing.T) {
	fb := newFake()
	g := mustGateway(t, Options{Backend: fb, Txn: func(ctx context.Context, req TxnRequest) (map[string][]byte, error) {
		out := make(map[string][]byte)
		for _, k := range req.Reads {
			fb.mu.Lock()
			out[k] = fb.data[k]
			fb.mu.Unlock()
		}
		for k, v := range req.Sets {
			if err := fb.Set(ctx, k, v); err != nil {
				return nil, err
			}
		}
		for _, k := range req.Deletes {
			if err := fb.Delete(ctx, k); err != nil {
				return nil, err
			}
		}
		return out, nil
	}})

	if w := do(g, "PUT", "/kv/a", []byte("1")); w.Code != http.StatusNoContent {
		t.Fatalf("put: %d %s", w.Code, w.Body)
	}
	if w := do(g, "GET", "/kv/a", nil); w.Code != http.StatusOK {
		t.Fatalf("get: %d %s", w.Code, w.Body)
	}
	if w := do(g, "DELETE", "/kv/a", nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: %d %s", w.Code, w.Body)
	}
	if w := do(g, "GET", "/kv/a", nil); w.Code != http.StatusNotFound {
		t.Fatalf("get after delete: %d %s", w.Code, w.Body)
	}

	body, _ := json.Marshal(TxnRequest{
		Sets:  map[string][]byte{"x": []byte("10")},
		Reads: []string{"x"},
	})
	w := do(g, "POST", "/txn", body)
	if w.Code != http.StatusOK {
		t.Fatalf("txn: %d %s", w.Code, w.Body)
	}

	bare := mustGateway(t, Options{Backend: fb})
	if w := do(bare, "POST", "/txn", body); w.Code != http.StatusNotImplemented {
		t.Fatalf("txn without TxnFunc: %d, want 501", w.Code)
	}
}

// TestBadRequests: unknown mode, bad timeout, and an empty key are all
// 400s (and never reach the backend).
func TestBadRequests(t *testing.T) {
	fb := newFake()
	g := mustGateway(t, Options{Backend: fb})
	for _, target := range []string{
		"/kv/a?mode=strong",
		"/kv/a?timeout=never",
		"/kv/a?timeout=-5ms",
		"/kv/",
	} {
		if w := do(g, "GET", target, nil); w.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", target, w.Code)
		}
	}
	if got := fb.gets.Load(); got != 0 {
		t.Fatalf("bad requests reached the backend %d times", got)
	}
}

// TestHealthz follows the backend's health.
func TestHealthz(t *testing.T) {
	fb := newFake()
	g := mustGateway(t, Options{Backend: fb})
	if w := do(g, "GET", "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthy: %d", w.Code)
	}
	fb.down.Store(true)
	if w := do(g, "GET", "/healthz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy: %d, want 503", w.Code)
	}
}

// TestMetricsExposition: after traffic, /metrics renders a valid
// Prometheus text page carrying the gateway families.
func TestMetricsExposition(t *testing.T) {
	fb := newFake()
	fb.data["k"] = []byte("v")
	g := mustGateway(t, Options{Backend: fb})
	do(g, "GET", "/kv/k?mode=bounded", nil)
	do(g, "GET", "/kv/missing", nil)
	do(g, "PUT", "/kv/k2", []byte("v"))

	w := do(g, "GET", "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	page := w.Body.String()
	if err := stats.ValidateExposition(strings.NewReader(page)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, page)
	}
	for _, want := range []string{
		`gateway_requests_total{op="get",mode="bounded",outcome="ok"} 1`,
		`gateway_requests_total{op="get",mode="eventual",outcome="miss"} 1`,
		`gateway_requests_total{op="put",mode="none",outcome="ok"} 1`,
		`gateway_upstream_reads_total 2`,
		`gateway_latency_seconds_bucket{mode="bounded",le="+Inf"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q\n%s", want, page)
		}
	}
}

// TestPoolRoundRobin: the pool rotates over handles and routes around
// unhealthy ones.
func TestPoolRoundRobin(t *testing.T) {
	backends := []*fakeBackend{newFake(), newFake(), newFake()}
	p := NewPool(backends[0], backends[1], backends[2])
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, _, err := p.Get(ctx, fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, fb := range backends {
		if got := fb.gets.Load(); got != 2 {
			t.Fatalf("backend %d served %d reads, want 2", i, got)
		}
	}
	backends[1].down.Store(true)
	for i := 0; i < 6; i++ {
		if _, _, err := p.Get(ctx, fmt.Sprintf("j%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := backends[1].gets.Load(); got != 2 {
		t.Fatalf("unhealthy backend took %d more reads", got-2)
	}
	if !p.Healthy() {
		t.Fatal("pool with healthy members reports unhealthy")
	}
	backends[0].down.Store(true)
	backends[2].down.Store(true)
	if p.Healthy() {
		t.Fatal("pool with no healthy members reports healthy")
	}
}

// TestStartServesHTTP exercises the real listener path (and h2c wiring
// on Go ≥ 1.24) end to end.
func TestStartServesHTTP(t *testing.T) {
	fb := newFake()
	fb.data["k"] = []byte("v")
	g := mustGateway(t, Options{Backend: fb})
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = g.Close() })
	resp, err := http.Get("http://" + addr + "/kv/k")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestPremergeWritesRejected: while the backend member has not merged
// with its group, PUT and DELETE are refused with a retryable 503 (and
// never reach the backend — a pre-merge write would be silently lost to
// the lowest-ID-wins merge), reads still serve, and the moment the
// member joins, writes flow again.
func TestPremergeWritesRejected(t *testing.T) {
	fb := newFake()
	fb.data["k"] = []byte("v")
	fb.unjoined.Store(true)
	reg := stats.NewRegistry()
	g := mustGateway(t, Options{Backend: fb, Registry: reg})

	for _, c := range []struct{ method, op string }{
		{"PUT", "set"}, {"DELETE", "del"},
	} {
		w := do(g, c.method, "/kv/k", []byte(`{"value":"bmV3"}`))
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s pre-merge: status %d, want 503: %s", c.method, w.Code, w.Body)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatalf("%s pre-merge: no Retry-After header", c.method)
		}
		var body errorBody
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if !body.Retryable {
			t.Fatalf("%s pre-merge: body not marked retryable: %+v", c.method, body)
		}
	}
	if got := fb.sets.Load() + fb.dels.Load(); got != 0 {
		t.Fatalf("%d writes reached the backend pre-merge", got)
	}
	if got := reg.Counter(stats.MetricGatewayPremergeRejects).Load(); got != 2 {
		t.Fatalf("%s = %d, want 2", stats.MetricGatewayPremergeRejects, got)
	}
	// Reads are unaffected: they cannot be lost to the merge.
	if w := do(g, "GET", "/kv/k", nil); w.Code != http.StatusOK {
		t.Fatalf("pre-merge GET: status %d", w.Code)
	}

	fb.unjoined.Store(false)
	if w := do(g, "PUT", "/kv/k", []byte(`{"value":"bmV3"}`)); w.Code != http.StatusNoContent {
		t.Fatalf("post-merge PUT: status %d: %s", w.Code, w.Body)
	}
	if got := fb.sets.Load(); got != 1 {
		t.Fatalf("post-merge PUT did not reach the backend (sets=%d)", got)
	}
}

// TestObserveWriteBatchHistogram: flushed batch sizes land in the
// gateway_write_batch_size histogram as unit ticks, so the summary's
// count/mean read directly as frames and ops-per-frame.
func TestObserveWriteBatchHistogram(t *testing.T) {
	reg := stats.NewRegistry()
	g := mustGateway(t, Options{Backend: newFake(), Registry: reg})
	for _, ops := range []int{1, 4, 8} {
		g.ObserveWriteBatch(ops)
	}
	h := reg.Histogram(stats.HistGatewayWriteBatch).Summary()
	if h.Count != 3 {
		t.Fatalf("histogram count = %d, want 3", h.Count)
	}
	if h.Max != 8*time.Nanosecond {
		t.Fatalf("histogram max = %v, want 8ns (8 ops)", h.Max)
	}
}
