package gateway

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Request coalescing: when many clients fetch the same key at the same
// consistency mode concurrently, only the first becomes the leader and
// performs the upstream read; the rest fan in on the leader's result.
// The win scales with the cost of the mode — a linearizable read orders
// a fence on the key's ring, so N concurrent fetches of a hot key cost
// one fence instead of N — and with the skew of the key popularity.
//
// The leader's upstream read runs on a detached context bounded by the
// gateway's upstream budget, NOT the leader's request context: the
// leader is just whichever request lost the race to be first, and its
// client disconnecting must not fail the whole fan-in. Every waiter
// (leader included) still honors its own request deadline — it stops
// waiting when its context is done, while the flight completes for the
// others.

// flight is one in-progress upstream read being fanned in on.
type flight struct {
	done chan struct{} // closed when the result fields are final
	val  []byte
	ok   bool
	err  error
}

// cacheEntry is one micro-cached read result.
type cacheEntry struct {
	val []byte
	ok  bool
	exp time.Time
}

// coalescer deduplicates concurrent fetches per key×mode and optionally
// micro-caches results for a TTL.
type coalescer struct {
	coalesce bool          // fan concurrent fetches into one flight
	ttl      time.Duration // > 0 enables the micro-cache
	budget   time.Duration // detached upstream read bound

	mu       sync.Mutex
	inflight map[string]*flight
	cache    map[string]cacheEntry

	// fanins counts calls that joined an existing flight, incremented
	// before the wait begins — tests synchronize on it to close the
	// "waiter arrived after the flight resolved" race deterministically.
	fanins atomic.Int64
}

func newCoalescer(coalesce bool, ttl, budget time.Duration) *coalescer {
	c := &coalescer{coalesce: coalesce, ttl: ttl, budget: budget}
	if coalesce {
		c.inflight = make(map[string]*flight)
	}
	if ttl > 0 {
		c.cache = make(map[string]cacheEntry)
	}
	return c
}

// outcome classifies how a do call was served, for the gateway's
// coalescing metrics.
type outcome int

const (
	servedUpstream  outcome = iota // this call was the leader (or ran solo)
	servedCoalesced                // fanned in on another call's flight
	servedCached                   // micro-cache hit
)

// do serves one read of key at the named mode: from the micro-cache if
// fresh, by fanning in on an identical in-flight read if one exists, or
// by leading a new upstream read via fetch. fetch receives a detached
// context when the read is shared (coalescing on); with coalescing off
// the caller's own context bounds it.
func (c *coalescer) do(ctx context.Context, key, mode string, fetch func(context.Context) ([]byte, bool, error)) ([]byte, bool, outcome, error) {
	fk := mode + "\x00" + key
	c.mu.Lock()
	if c.cache != nil {
		if e, hit := c.cache[fk]; hit {
			if time.Now().Before(e.exp) {
				c.mu.Unlock()
				return e.val, e.ok, servedCached, nil
			}
			delete(c.cache, fk)
		}
	}
	if !c.coalesce {
		c.mu.Unlock()
		v, ok, err := fetch(ctx)
		c.store(fk, v, ok, err)
		return v, ok, servedUpstream, err
	}
	if f := c.inflight[fk]; f != nil {
		c.fanins.Add(1)
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, f.ok, servedCoalesced, f.err
		case <-ctx.Done():
			return nil, false, servedCoalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[fk] = f
	c.mu.Unlock()

	go func() {
		fctx, cancel := context.WithTimeout(context.Background(), c.budget)
		defer cancel()
		f.val, f.ok, f.err = fetch(fctx)
		c.mu.Lock()
		delete(c.inflight, fk)
		c.mu.Unlock()
		c.store(fk, f.val, f.ok, f.err)
		close(f.done)
	}()
	select {
	case <-f.done:
		return f.val, f.ok, servedUpstream, f.err
	case <-ctx.Done():
		// The leader's client gave up; the flight keeps running for
		// whoever else fanned in.
		return nil, false, servedUpstream, ctx.Err()
	}
}

// store micro-caches a successful result (including "not found" — a
// negative hit is as coalescable as a positive one).
func (c *coalescer) store(fk string, val []byte, ok bool, err error) {
	if c.cache == nil || err != nil {
		return
	}
	c.mu.Lock()
	c.cache[fk] = cacheEntry{val: val, ok: ok, exp: time.Now().Add(c.ttl)}
	c.mu.Unlock()
}

// invalidate drops the micro-cached entries for a key in every mode —
// called on writes through the gateway so its own clients read their
// writes once the TTL cache is on. Writes not routed through this
// gateway still become visible only as entries expire; the TTL is the
// staleness bound.
func (c *coalescer) invalidate(key string, modes []string) {
	if c.cache == nil {
		return
	}
	c.mu.Lock()
	for _, m := range modes {
		delete(c.cache, m+"\x00"+key)
	}
	c.mu.Unlock()
}
