//go:build go1.24

package gateway

import "net/http"

// enableH2C accepts cleartext HTTP/2 (h2c) alongside HTTP/1.1, so a
// client fleet can multiplex its gateway traffic over one TCP
// connection per gateway instead of a connection per in-flight request.
// The build tag gates on the Go 1.24 toolchain, which introduced
// net/http.Protocols; older toolchains compile the no-op fallback and
// serve HTTP/1.1 only.
func enableH2C(srv *http.Server) {
	p := new(http.Protocols)
	p.SetHTTP1(true)
	p.SetUnencryptedHTTP2(true)
	srv.Protocols = p
}
