// Package gateway is Raincore's HTTP/JSON access tier: a stateless
// front that pools cluster handles, coalesces concurrent reads of hot
// keys into single upstream fetches, enforces per-request deadlines,
// and speaks the facade's retryable-error taxonomy to external clients
// as status codes and Retry-After headers. The ordered core keeps its
// zero-copy UDP protocol between members; fleets of clients that cannot
// join a token ring get this tier instead.
//
// Surface:
//
//	GET    /kv/{key}?mode=&timeout=   read (eventual|bounded|linearizable|lease)
//	PUT    /kv/{key}?timeout=         write (body = raw value bytes)
//	DELETE /kv/{key}?timeout=         delete
//	POST   /txn?timeout=              cross-shard transaction (JSON body)
//	GET    /healthz                   liveness of the member(s) behind
//	GET    /metrics                   Prometheus text exposition
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/dds"
	"repro/internal/rcerr"
	"repro/internal/stats"
)

// maxValueBytes bounds a PUT body / txn document; the ordered core
// fragments large payloads, but a gateway should not buffer arbitrary
// uploads.
const maxValueBytes = 4 << 20

// TxnRequest is the JSON body of POST /txn: declared read, write and
// delete sets, committed atomically across shards. Values are base64
// (encoding/json's []byte convention).
type TxnRequest struct {
	Reads   []string          `json:"reads,omitempty"`
	Sets    map[string][]byte `json:"sets,omitempty"`
	Deletes []string          `json:"deletes,omitempty"`
}

// TxnFunc commits one TxnRequest, returning the read-set values at the
// serialization point. The daemon wires this to Cluster.Txn; a nil
// TxnFunc makes POST /txn answer 501.
type TxnFunc func(ctx context.Context, req TxnRequest) (map[string][]byte, error)

// Options configures New. Zero values mean: coalescing on, no
// micro-cache, eventual default reads, 2s default / 30s max timeout,
// unlimited inflight, private registry.
type Options struct {
	// Backend serves the data operations (required). Use Pool to spread
	// over several cluster handles.
	Backend Backend
	// Txn commits POST /txn bodies (nil answers 501).
	Txn TxnFunc
	// Registry records the gateway_* metrics; /metrics renders it.
	Registry *stats.Registry
	// DefaultTimeout bounds requests that name no ?timeout= (default 2s).
	// It is also the detached upstream budget of coalesced reads.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested ?timeout= values (default 30s).
	MaxTimeout time.Duration
	// DisableCoalesce turns hot-key fan-in off (each request reads
	// upstream itself); the zero value keeps coalescing on.
	DisableCoalesce bool
	// CacheTTL > 0 micro-caches read results per key×mode for the TTL.
	CacheTTL time.Duration
	// ReadMode is the consistency served when ?mode= is absent:
	// "eventual" (default), "bounded", "linearizable" or "lease".
	ReadMode string
	// MaxStaleness parameterizes bounded mode (default 50ms).
	MaxStaleness time.Duration
	// Lease parameterizes lease mode (default 100ms).
	Lease time.Duration
	// MaxInflight sheds requests with 429 beyond this concurrency
	// (0 = unlimited).
	MaxInflight int
}

// Gateway is one running access tier instance.
type Gateway struct {
	o     Options
	co    *coalescer
	mux   *http.ServeMux
	reg   *stats.Registry
	modes map[string][]dds.ReadOption
	names []string // mode names, for cache invalidation on writes

	inflight *stats.Gauge
	live     int64 // current inflight (guarded by liveMu; gauge mirrors it)
	liveMu   sync.Mutex

	srv *http.Server
	ln  net.Listener
}

// New builds a Gateway over the Options. The returned gateway is a
// handler factory — mount Handler on any server, or call Start to bind
// its own listener (h2c-capable on Go ≥ 1.24).
func New(o Options) (*Gateway, error) {
	if o.Backend == nil {
		return nil, errors.New("gateway: Options.Backend is required")
	}
	if o.Registry == nil {
		o.Registry = stats.NewRegistry()
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 2 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 30 * time.Second
	}
	if o.ReadMode == "" {
		o.ReadMode = "eventual"
	}
	if o.MaxStaleness <= 0 {
		o.MaxStaleness = 50 * time.Millisecond
	}
	if o.Lease <= 0 {
		o.Lease = 100 * time.Millisecond
	}
	g := &Gateway{
		o:   o,
		co:  newCoalescer(!o.DisableCoalesce, o.CacheTTL, o.DefaultTimeout),
		reg: o.Registry,
		modes: map[string][]dds.ReadOption{
			"eventual":     {dds.WithEventual()},
			"bounded":      {dds.WithMaxStaleness(o.MaxStaleness)},
			"linearizable": {dds.WithLinearizable()},
			"lease":        {dds.WithReadLease(o.Lease)},
		},
		inflight: o.Registry.Gauge(stats.GaugeGatewayInflight),
	}
	if _, ok := g.modes[o.ReadMode]; !ok {
		return nil, fmt.Errorf("gateway: unknown ReadMode %q", o.ReadMode)
	}
	for name := range g.modes {
		g.names = append(g.names, name)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /kv/{key...}", g.handleGet)
	mux.HandleFunc("PUT /kv/{key...}", g.handlePut)
	mux.HandleFunc("DELETE /kv/{key...}", g.handleDelete)
	mux.HandleFunc("POST /txn", g.handleTxn)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux = mux
	return g, nil
}

// Handler returns the gateway's HTTP handler for mounting on a caller's
// server (tests, embedding).
func (g *Gateway) Handler() http.Handler { return g.mux }

// Invalidate drops the micro-cached entries for key in every mode. Wire
// it to the cluster's ordered-apply stream (Cluster.OnApply) and the
// cache TTL stops being a staleness bound: a write committed through ANY
// member evicts this gateway's entry the moment it applies on the member
// behind it, so CacheTTL can grow without serving stale reads. Writes
// through this gateway still invalidate synchronously.
func (g *Gateway) Invalidate(key string) { g.co.invalidate(key, g.names) }

// Start binds addr and serves the gateway on it, returning the bound
// address (useful with ":0"). On Go ≥ 1.24 the server also accepts
// cleartext HTTP/2 (h2c), so client fleets can multiplex one connection.
func (g *Gateway) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("gateway: listen %s: %w", addr, err)
	}
	g.ln = ln
	g.srv = &http.Server{Handler: g.mux}
	enableH2C(g.srv)
	go func() { _ = g.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener started by Start (no-op otherwise).
func (g *Gateway) Close() error {
	if g.srv == nil {
		return nil
	}
	return g.srv.Close()
}

// --- request plumbing ---

// errorBody is the structured JSON error every non-2xx response carries.
type errorBody struct {
	Error     string `json:"error"`
	Op        string `json:"op"`
	Key       string `json:"key,omitempty"`
	Retryable bool   `json:"retryable"`
}

// admit applies the inflight gauge and load shedding. It returns false
// (after answering 429) when the gateway is over MaxInflight; the caller
// must invoke release() exactly once when it admitted.
func (g *Gateway) admit(w http.ResponseWriter, op, mode string) (release func(), ok bool) {
	g.liveMu.Lock()
	if g.o.MaxInflight > 0 && g.live >= int64(g.o.MaxInflight) {
		g.liveMu.Unlock()
		g.count(op, mode, "shed")
		w.Header().Set("Retry-After", "1")
		g.writeErr(w, http.StatusTooManyRequests, errorBody{
			Error: "gateway over capacity", Op: op, Retryable: true,
		})
		return nil, false
	}
	g.live++
	g.inflight.Set(g.live)
	g.liveMu.Unlock()
	return func() {
		g.liveMu.Lock()
		g.live--
		g.inflight.Set(g.live)
		g.liveMu.Unlock()
	}, true
}

// deadline resolves the request's deadline — ?timeout= as a Go duration
// ("250ms") or bare milliseconds, clamped to MaxTimeout; DefaultTimeout
// otherwise — and returns the derived context.
func (g *Gateway) deadline(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := g.o.DefaultTimeout
	if s := r.URL.Query().Get("timeout"); s != "" {
		var err error
		if d, err = time.ParseDuration(s); err != nil {
			if ms, merr := strconv.Atoi(s); merr == nil {
				d = time.Duration(ms) * time.Millisecond
			} else {
				return nil, nil, fmt.Errorf("bad timeout %q: %v", s, err)
			}
		}
		if d <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q: must be positive", s)
		}
		if d > g.o.MaxTimeout {
			d = g.o.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// count bumps gateway_requests_total{op,mode,outcome}.
func (g *Gateway) count(op, mode, outcome string) {
	g.reg.Counter(stats.LabeledName(stats.MetricGatewayRequests,
		"op", op, "mode", mode, "outcome", outcome)).Inc()
}

// finish maps an operation error onto the response: the retryable
// taxonomy becomes 503 + Retry-After (the client should back off and
// repeat), a blown deadline becomes 504, anything else 500. It returns
// the outcome label for the metrics.
func (g *Gateway) finish(w http.ResponseWriter, op, key string, err error) string {
	var status int
	var outcome string
	retryable := false
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status, outcome, retryable = http.StatusGatewayTimeout, "timeout", true
	case errors.Is(err, rcerr.ErrRetryable), errors.Is(err, context.Canceled):
		status, outcome, retryable = http.StatusServiceUnavailable, "unavailable", true
		w.Header().Set("Retry-After", "1")
	default:
		status, outcome = http.StatusInternalServerError, "error"
	}
	g.writeErr(w, status, errorBody{Error: err.Error(), Op: op, Key: key, Retryable: retryable})
	return outcome
}

func (g *Gateway) writeErr(w http.ResponseWriter, status int, body errorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// --- handlers ---

// getResponse is the JSON body of a successful GET /kv/{key}.
type getResponse struct {
	Key   string `json:"key"`
	Value []byte `json:"value"` // base64 per encoding/json
	Mode  string `json:"mode"`
	// Coalesced reports the read fanned in on another request's flight;
	// Cached that it was served from the TTL micro-cache.
	Coalesced bool `json:"coalesced,omitempty"`
	Cached    bool `json:"cached,omitempty"`
}

func (g *Gateway) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = g.o.ReadMode
	}
	opts, known := g.modes[mode]
	if key == "" || !known {
		g.count("get", mode, "bad_request")
		g.writeErr(w, http.StatusBadRequest, errorBody{
			Error: "want /kv/{key}?mode=eventual|bounded|linearizable|lease",
			Op:    "get", Key: key,
		})
		return
	}
	release, ok := g.admit(w, "get", mode)
	if !ok {
		return
	}
	defer release()
	ctx, cancel, err := g.deadline(r)
	if err != nil {
		g.count("get", mode, "bad_request")
		g.writeErr(w, http.StatusBadRequest, errorBody{Error: err.Error(), Op: "get", Key: key})
		return
	}
	defer cancel()

	start := time.Now()
	val, found, how, err := g.co.do(ctx, key, mode, func(fctx context.Context) ([]byte, bool, error) {
		g.reg.Counter(stats.MetricGatewayUpstream).Inc()
		return g.o.Backend.Get(fctx, key, opts...)
	})
	g.reg.Histogram(stats.LabeledName(stats.HistGatewayLatency, "mode", mode)).
		Observe(time.Since(start))
	switch how {
	case servedCoalesced:
		g.reg.Counter(stats.MetricGatewayCoalesced).Inc()
	case servedCached:
		g.reg.Counter(stats.MetricGatewayCacheHits).Inc()
	}
	if err != nil {
		g.count("get", mode, g.finish(w, "get", key, err))
		return
	}
	if !found {
		g.count("get", mode, "miss")
		g.writeErr(w, http.StatusNotFound, errorBody{Error: "key not found", Op: "get", Key: key})
		return
	}
	g.count("get", mode, "ok")
	writeJSON(w, http.StatusOK, getResponse{
		Key: key, Value: val, Mode: mode,
		Coalesced: how == servedCoalesced, Cached: how == servedCached,
	})
}

// admitWrite rejects mutations while the member behind the gateway has
// not yet assembled with its configured peers. A pre-merge singleton
// member would accept the write locally and then lose it to the
// lowest-ID-wins group merge — surfacing 503 (retryable) instead turns
// that silent loss window into a visible back-off.
func (g *Gateway) admitWrite(w http.ResponseWriter, op, key string) bool {
	if g.o.Backend.Joined() {
		return true
	}
	g.reg.Counter(stats.MetricGatewayPremergeRejects).Inc()
	g.count(op, "none", "premerge")
	w.Header().Set("Retry-After", "1")
	g.writeErr(w, http.StatusServiceUnavailable, errorBody{
		Error: "member has not joined its group yet; writes would be lost to the merge",
		Op:    op, Key: key, Retryable: true,
	})
	return false
}

// ObserveWriteBatch records one flushed write-batch's op count into the
// gateway_write_batch_size histogram. Wire it to the cluster's
// coalescer (Cluster.DDS().OnWriteBatch) so the gateway's metrics show
// how many client writes each ordered frame is carrying. The registry's
// histograms are duration-typed; batch sizes are stored as unit ticks
// (1 op = 1ns), so the summary's mean/percentiles read directly as ops.
func (g *Gateway) ObserveWriteBatch(ops int) {
	g.reg.Histogram(stats.HistGatewayWriteBatch).Observe(time.Duration(ops))
}

// handleWrite factors PUT and DELETE: resolve deadline, run op, map the
// error, invalidate the micro-cache on success.
func (g *Gateway) handleWrite(w http.ResponseWriter, r *http.Request, op string, run func(ctx context.Context, key string) error) {
	key := r.PathValue("key")
	if key == "" {
		g.count(op, "none", "bad_request")
		g.writeErr(w, http.StatusBadRequest, errorBody{Error: "want /kv/{key}", Op: op})
		return
	}
	if !g.admitWrite(w, op, key) {
		return
	}
	release, ok := g.admit(w, op, "none")
	if !ok {
		return
	}
	defer release()
	ctx, cancel, err := g.deadline(r)
	if err != nil {
		g.count(op, "none", "bad_request")
		g.writeErr(w, http.StatusBadRequest, errorBody{Error: err.Error(), Op: op, Key: key})
		return
	}
	defer cancel()
	if err := run(ctx, key); err != nil {
		g.count(op, "none", g.finish(w, op, key, err))
		return
	}
	g.co.invalidate(key, g.names)
	g.count(op, "none", "ok")
	w.WriteHeader(http.StatusNoContent)
}

func (g *Gateway) handlePut(w http.ResponseWriter, r *http.Request) {
	g.handleWrite(w, r, "put", func(ctx context.Context, key string) error {
		body, err := readAll(w, r)
		if err != nil {
			return err
		}
		return g.o.Backend.Set(ctx, key, body)
	})
}

func (g *Gateway) handleDelete(w http.ResponseWriter, r *http.Request) {
	g.handleWrite(w, r, "delete", func(ctx context.Context, key string) error {
		return g.o.Backend.Delete(ctx, key)
	})
}

func (g *Gateway) handleTxn(w http.ResponseWriter, r *http.Request) {
	if g.o.Txn == nil {
		g.count("txn", "none", "bad_request")
		g.writeErr(w, http.StatusNotImplemented, errorBody{
			Error: "transactions are not wired on this gateway", Op: "txn",
		})
		return
	}
	if !g.admitWrite(w, "txn", "") {
		return
	}
	release, ok := g.admit(w, "txn", "none")
	if !ok {
		return
	}
	defer release()
	var req TxnRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxValueBytes)).Decode(&req); err != nil {
		g.count("txn", "none", "bad_request")
		g.writeErr(w, http.StatusBadRequest, errorBody{Error: "bad txn body: " + err.Error(), Op: "txn"})
		return
	}
	ctx, cancel, err := g.deadline(r)
	if err != nil {
		g.count("txn", "none", "bad_request")
		g.writeErr(w, http.StatusBadRequest, errorBody{Error: err.Error(), Op: "txn"})
		return
	}
	defer cancel()
	reads, err := g.o.Txn(ctx, req)
	if err != nil {
		g.count("txn", "none", g.finish(w, "txn", "", err))
		return
	}
	for k := range req.Sets {
		g.co.invalidate(k, g.names)
	}
	for _, k := range req.Deletes {
		g.co.invalidate(k, g.names)
	}
	g.count("txn", "none", "ok")
	writeJSON(w, http.StatusOK, map[string]any{"reads": reads})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !g.o.Backend.Healthy() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"healthy": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"healthy": true})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := g.reg.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.WriteText(w)
}

// readAll drains a bounded request body.
func readAll(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	lr := http.MaxBytesReader(w, r.Body, maxValueBytes)
	defer lr.Close()
	return io.ReadAll(lr)
}
