package broadcast

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// group builds n broadcast nodes over a fresh simnet.
func group(t *testing.T, n int, mode Mode, prof simnet.Profile) []*Node {
	t.Helper()
	net := simnet.New(simnet.Options{Default: prof, Seed: 5})
	t.Cleanup(net.Close)
	cfg := transport.DefaultConfig()
	cfg.AckTimeout = 10 * time.Millisecond
	cfg.Attempts = 10
	var nodes []*Node
	var trs []*transport.Transport
	for i := 1; i <= n; i++ {
		addr := simnet.Addr(fmt.Sprintf("b%d", i))
		tr := transport.New(wire.NodeID(i), []transport.PacketConn{transport.NewSimConn(net.MustEndpoint(addr))}, nil, nil, cfg)
		trs = append(trs, tr)
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	for i, tr := range trs {
		for j := 1; j <= n; j++ {
			if j != i+1 {
				tr.SetPeer(wire.NodeID(j), []transport.Addr{transport.Addr(fmt.Sprintf("b%d", j))})
			}
		}
		var peers []wire.NodeID
		for j := 1; j <= n; j++ {
			if j != i+1 {
				peers = append(peers, wire.NodeID(j))
			}
		}
		nodes = append(nodes, New(tr, peers, mode, stats.NewRegistry()))
	}
	return nodes
}

type sink struct {
	mu  sync.Mutex
	got []string
}

func (s *sink) add(d Delivery) {
	s.mu.Lock()
	s.got = append(s.got, string(d.Payload))
	s.mu.Unlock()
}

func (s *sink) list() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.got...)
}

func waitLen(t *testing.T, s *sink, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(s.list()) >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout: got %d messages (%v), want %d", len(s.list()), s.list(), n)
}

func TestUnorderedDeliversToAll(t *testing.T) {
	nodes := group(t, 3, Unordered, simnet.Profile{})
	sinks := make([]*sink, len(nodes))
	for i, n := range nodes {
		sinks[i] = &sink{}
		n.SetHandler(sinks[i].add)
	}
	if err := nodes[0].Multicast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		waitLen(t, sinks[i], 1, 5*time.Second)
	}
}

func TestTotalOrderAgreement(t *testing.T) {
	nodes := group(t, 4, TotalOrder, simnet.Profile{Latency: time.Millisecond, Jitter: 2 * time.Millisecond})
	sinks := make([]*sink, len(nodes))
	for i, n := range nodes {
		sinks[i] = &sink{}
		n.SetHandler(sinks[i].add)
	}
	const perNode = 8
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			for k := 0; k < perNode; k++ {
				if err := n.Multicast([]byte(fmt.Sprintf("n%d-%d", i, k))); err != nil {
					t.Error(err)
				}
			}
		}(i, n)
	}
	wg.Wait()
	total := perNode * len(nodes)
	for i := range nodes {
		waitLen(t, sinks[i], total, 10*time.Second)
	}
	ref := sinks[0].list()
	for i := 1; i < len(sinks); i++ {
		got := sinks[i].list()
		if len(got) != len(ref) {
			t.Fatalf("node %d delivered %d, node 0 delivered %d", i, len(got), len(ref))
		}
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("order diverges at %d: node %d has %q, node 0 has %q", k, i, got[k], ref[k])
			}
		}
	}
}

func TestTotalOrderWithLoss(t *testing.T) {
	nodes := group(t, 3, TotalOrder, simnet.Profile{Loss: 0.2})
	sinks := make([]*sink, len(nodes))
	for i, n := range nodes {
		sinks[i] = &sink{}
		n.SetHandler(sinks[i].add)
	}
	for k := 0; k < 5; k++ {
		if err := nodes[k%3].Multicast([]byte(fmt.Sprintf("m%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	for i := range nodes {
		waitLen(t, sinks[i], 5, 20*time.Second)
	}
	ref := sinks[0].list()
	for i := 1; i < len(sinks); i++ {
		got := sinks[i].list()
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("order diverges under loss at %d", k)
			}
		}
	}
}

func TestTaskSwitchAccounting(t *testing.T) {
	nodes := group(t, 4, Unordered, simnet.Profile{})
	sinks := make([]*sink, len(nodes))
	for i, n := range nodes {
		sinks[i] = &sink{}
		n.SetHandler(sinks[i].add)
	}
	const msgs = 10
	for k := 0; k < msgs; k++ {
		if err := nodes[0].Multicast([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := range nodes {
		waitLen(t, sinks[i], msgs, 5*time.Second)
	}
	// Every receiver paid one task switch per message.
	for i := 1; i < len(nodes); i++ {
		got := nodes[i].Stats().Counter(stats.MetricTaskSwitches).Load()
		if got != msgs {
			t.Fatalf("node %d task switches = %d, want %d", i, got, msgs)
		}
	}
}

func TestTotalOrderTaskSwitchesScaleWithPhases(t *testing.T) {
	nodes := group(t, 3, TotalOrder, simnet.Profile{})
	sinks := make([]*sink, len(nodes))
	for i, n := range nodes {
		sinks[i] = &sink{}
		n.SetHandler(sinks[i].add)
	}
	if err := nodes[0].Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		waitLen(t, sinks[i], 1, 5*time.Second)
	}
	// A non-originator processes PREPARE + COMMIT = 2 packets; the
	// originator processes N-1 = 2 PROPOSE packets.
	for i := 1; i < len(nodes); i++ {
		got := nodes[i].Stats().Counter(stats.MetricTaskSwitches).Load()
		if got != 2 {
			t.Fatalf("node %d task switches = %d, want 2 (prepare+commit)", i, got)
		}
	}
	if got := nodes[0].Stats().Counter(stats.MetricTaskSwitches).Load(); got != 2 {
		t.Fatalf("originator task switches = %d, want 2 proposals", got)
	}
}

func TestMulticastAfterClose(t *testing.T) {
	nodes := group(t, 2, Unordered, simnet.Profile{})
	nodes[0].Close()
	if err := nodes[0].Multicast([]byte("x")); err == nil {
		t.Fatal("multicast after close succeeded")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	f := encode(frameCommit, 9, 77, 123456, []byte("pp"))
	kind, origin, id, ts, body, err := decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if kind != frameCommit || origin != 9 || id != 77 || ts != 123456 || string(body) != "pp" {
		t.Fatalf("round trip mismatch: %d %d %d %d %q", kind, origin, id, ts, body)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2}, make([]byte, headerLen-1), append([]byte{99}, make([]byte, headerLen)...)} {
		if _, _, _, _, _, err := decode(b); err == nil {
			t.Fatalf("decode(%x) succeeded", b)
		}
	}
}
