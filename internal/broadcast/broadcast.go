// Package broadcast implements the comparison baselines of the paper's
// overhead analysis (§4.1): reliable multicast built on unicast fan-out
// with acknowledgements, in two flavors:
//
//   - Unordered: each message is reliably unicast to every peer and
//     delivered on receipt ("a broadcast-based protocol").
//   - TotalOrder: a two-phase-commit style agreement on delivery
//     timestamps (Skeen's algorithm: prepare → propose → commit), the
//     classic way to get consistent ordering from point-to-point
//     broadcast, costing up to 6·M·N task switches per node per second
//     in the paper's accounting.
//
// Both run over the same Raincore Transport Service and simulated network
// as the token protocol, so packet counts, byte counts and task switches
// are directly comparable.
package broadcast

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"

	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Mode selects the baseline variant.
type Mode uint8

const (
	// Unordered delivers messages on receipt: reliable, no ordering.
	Unordered Mode = iota
	// TotalOrder agrees on a global delivery order via two-phase commit.
	TotalOrder
)

// Delivery is one message handed to the application.
type Delivery struct {
	Origin  wire.NodeID
	Payload []byte
}

// Node is one member of a broadcast-based group with static membership.
type Node struct {
	id    wire.NodeID
	peers []wire.NodeID
	tr    *transport.Transport
	reg   *stats.Registry
	mode  Mode

	mu      sync.Mutex
	lamport uint64
	nextID  uint64
	collect map[uint64]*collectState
	buffer  map[msgKey]*bufMsg
	handler func(Delivery)
	closed  bool
}

type msgKey struct {
	origin wire.NodeID
	id     uint64
}

type collectState struct {
	proposals map[wire.NodeID]uint64
	want      int
}

type bufMsg struct {
	key       msgKey
	payload   []byte
	ts        uint64
	committed bool
}

// New builds a broadcast node over an existing transport. peers lists the
// other members (excluding this node).
func New(tr *transport.Transport, peers []wire.NodeID, mode Mode, reg *stats.Registry) *Node {
	if reg == nil {
		reg = tr.Stats()
	}
	n := &Node{
		id:      tr.Local(),
		peers:   append([]wire.NodeID(nil), peers...),
		tr:      tr,
		reg:     reg,
		mode:    mode,
		collect: make(map[uint64]*collectState),
		buffer:  make(map[msgKey]*bufMsg),
	}
	tr.SetHandler(n.onPacket)
	return n
}

// SetHandler installs the delivery callback. For TotalOrder mode the
// callback observes the agreed global order.
func (n *Node) SetHandler(fn func(Delivery)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = fn
}

// Stats returns the metric registry.
func (n *Node) Stats() *stats.Registry { return n.reg }

// Multicast sends payload to the whole group.
func (n *Node) Multicast(payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("broadcast: node closed")
	}
	n.nextID++
	id := n.nextID
	n.reg.Counter(stats.MetricMsgsSent).Inc()
	switch n.mode {
	case Unordered:
		h := n.handler
		n.mu.Unlock()
		frame := encode(frameData, n.id, id, 0, payload)
		for _, p := range n.peers {
			n.tr.Send(p, frame, nil)
		}
		if h != nil {
			h(Delivery{Origin: n.id, Payload: payload})
		}
		n.reg.Counter(stats.MetricMsgsDelivered).Inc()
		return nil
	default: // TotalOrder: phase 1, PREPARE to all, propose locally too.
		n.lamport++
		key := msgKey{n.id, id}
		n.buffer[key] = &bufMsg{key: key, payload: append([]byte(nil), payload...), ts: n.lamport}
		n.collect[id] = &collectState{
			proposals: map[wire.NodeID]uint64{n.id: n.lamport},
			want:      len(n.peers) + 1,
		}
		n.mu.Unlock()
		frame := encode(framePrepare, n.id, id, 0, payload)
		for _, p := range n.peers {
			n.tr.Send(p, frame, nil)
		}
		n.maybeCommit(id)
		return nil
	}
}

// onPacket handles a protocol packet; every receipt is one task switch in
// the §4.1 accounting.
func (n *Node) onPacket(from wire.NodeID, payload []byte, buf *wire.Buf) {
	kind, origin, id, ts, body, err := decode(payload)
	if err != nil {
		return
	}
	if buf != nil && len(body) > 0 {
		// Ordered modes queue payloads well beyond this callback; own the
		// bytes rather than retaining the pooled receive buffer that long.
		body = append([]byte(nil), body...)
	}
	n.reg.Counter(stats.MetricTaskSwitches).Inc()
	switch kind {
	case frameData:
		n.mu.Lock()
		h := n.handler
		n.mu.Unlock()
		n.reg.Counter(stats.MetricMsgsDelivered).Inc()
		if h != nil {
			h(Delivery{Origin: origin, Payload: body})
		}
	case framePrepare:
		n.mu.Lock()
		n.lamport++
		prop := n.lamport
		key := msgKey{origin, id}
		if _, dup := n.buffer[key]; !dup {
			n.buffer[key] = &bufMsg{key: key, payload: append([]byte(nil), body...), ts: prop}
		}
		n.mu.Unlock()
		n.tr.Send(origin, encode(framePropose, n.id, id, prop, nil), nil)
	case framePropose:
		if origin != n.id {
			// Proposals are addressed to the originator; the origin field
			// carries the proposer here, id identifies our message.
		}
		n.mu.Lock()
		st := n.collect[id]
		if st != nil {
			st.proposals[from] = ts
		}
		n.mu.Unlock()
		n.maybeCommit(id)
	case frameCommit:
		n.applyCommit(msgKey{origin, id}, ts)
	}
}

// maybeCommit finishes phase 2 at the originator once all proposals are in.
func (n *Node) maybeCommit(id uint64) {
	n.mu.Lock()
	st := n.collect[id]
	if st == nil || len(st.proposals) < st.want {
		n.mu.Unlock()
		return
	}
	delete(n.collect, id)
	final := uint64(0)
	for _, p := range st.proposals {
		if p > final {
			final = p
		}
	}
	if final > n.lamport {
		n.lamport = final
	}
	n.mu.Unlock()
	frame := encode(frameCommit, n.id, id, final, nil)
	for _, p := range n.peers {
		n.tr.Send(p, frame, nil)
	}
	n.applyCommit(msgKey{n.id, id}, final)
}

// applyCommit finalizes a message's timestamp and delivers everything that
// became deliverable: a committed message delivers when its (ts, origin,
// id) is minimal among all buffered messages.
func (n *Node) applyCommit(key msgKey, final uint64) {
	n.mu.Lock()
	m := n.buffer[key]
	if m == nil {
		n.mu.Unlock()
		return
	}
	m.ts = final
	m.committed = true
	if final > n.lamport {
		n.lamport = final
	}
	var ready []*bufMsg
	for {
		all := make([]*bufMsg, 0, len(n.buffer))
		for _, b := range n.buffer {
			all = append(all, b)
		}
		if len(all) == 0 {
			break
		}
		sort.Slice(all, func(i, j int) bool { return lessMsg(all[i], all[j]) })
		head := all[0]
		if !head.committed {
			break
		}
		delete(n.buffer, head.key)
		ready = append(ready, head)
	}
	h := n.handler
	n.mu.Unlock()
	for _, r := range ready {
		n.reg.Counter(stats.MetricMsgsDelivered).Inc()
		if h != nil {
			h(Delivery{Origin: r.key.origin, Payload: r.payload})
		}
	}
}

func lessMsg(a, b *bufMsg) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	if a.key.origin != b.key.origin {
		return a.key.origin < b.key.origin
	}
	return a.key.id < b.key.id
}

// Close detaches the node from its transport handler.
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
}

// --- frame codec ---
//
//	byte 0      kind
//	bytes 1-4   origin NodeID
//	bytes 5-12  message ID
//	bytes 13-20 timestamp (propose/commit)
//	bytes 21..  payload

type frameKind byte

const (
	frameData    frameKind = 1
	framePrepare frameKind = 2
	framePropose frameKind = 3
	frameCommit  frameKind = 4
)

const headerLen = 21

func encode(kind frameKind, origin wire.NodeID, id, ts uint64, payload []byte) []byte {
	b := make([]byte, headerLen, headerLen+len(payload))
	b[0] = byte(kind)
	binary.LittleEndian.PutUint32(b[1:], uint32(origin))
	binary.LittleEndian.PutUint64(b[5:], id)
	binary.LittleEndian.PutUint64(b[13:], ts)
	return append(b, payload...)
}

func decode(b []byte) (frameKind, wire.NodeID, uint64, uint64, []byte, error) {
	if len(b) < headerLen {
		return 0, 0, 0, 0, nil, errors.New("broadcast: short frame")
	}
	kind := frameKind(b[0])
	if kind < frameData || kind > frameCommit {
		return 0, 0, 0, 0, nil, errors.New("broadcast: bad kind")
	}
	origin := wire.NodeID(binary.LittleEndian.Uint32(b[1:]))
	id := binary.LittleEndian.Uint64(b[5:])
	ts := binary.LittleEndian.Uint64(b[13:])
	return kind, origin, id, ts, b[headerLen:], nil
}
