package rainwall

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dds"
	"repro/internal/health"
	"repro/internal/stats"
	"repro/internal/vip"
)

// Gateway is one Rainwall firewall node: the full Raincore stack plus the
// packet engine, the firewall policy and a forwarding-capacity model
// standing in for the Sun Ultra-5 data plane of §4.2.
type Gateway struct {
	Node    *core.Node
	Svc     *dds.Service
	VIPMgr  *vip.Manager
	Engine  *PacketEngine
	Monitor *health.Monitor
	Policy  *Policy

	// CapacityBps is the node's forwarding capacity in bits per second.
	CapacityBps float64
	// SyncCostPerPeer models the per-peer coordination work of the real
	// Rainwall data plane (connection-table and load sharing with each
	// other member): every peer beyond the first consumes this fraction
	// of forwarding capacity. Calibrated to the paper's Figure 3
	// efficiency curve (98.5% at 2 nodes, 94% at 4); see EXPERIMENTS.md.
	SyncCostPerPeer float64

	mu            sync.Mutex
	offeredBits   float64 // accumulated this tick
	deliveredBits float64 // total since start
	filteredBits  float64 // dropped by policy
	verdicts      map[uint64]Verdict

	loadStop chan struct{}
	loadOnce sync.Once
}

// loadKey names a gateway's load entry in the replicated map.
func loadKey(id core.NodeID) string { return fmt.Sprintf("load/%d", uint32(id)) }

// newGateway assembles one gateway over an existing (unstarted) node.
func newGateway(node *core.Node, subnet *vip.Subnet, pool []vip.IP, capacityBps float64, policy *Policy) *Gateway {
	g := &Gateway{
		Node:        node,
		Engine:      NewPacketEngine(),
		Policy:      policy,
		CapacityBps: capacityBps,
		verdicts:    make(map[uint64]Verdict),
	}
	g.Svc = dds.New(node)
	g.VIPMgr = vip.NewManager(g.Svc, subnet, pool, MACOf)
	g.VIPMgr.Start(core.Handlers{
		OnMembership: func(e core.MembershipEvent) {
			g.Engine.SetMembers(e.Members)
		},
	})
	g.Monitor = health.NewMonitor(health.Config{
		Interval:      100 * time.Millisecond,
		FailThreshold: 2,
	}, func(resource string) {
		node.FailCriticalResource(resource)
	})
	g.loadStop = make(chan struct{})
	// Share this gateway's load figure through the data service (§3.2:
	// "the load and connection assignment information are shared among
	// the cluster using the Raincore Distributed Session Service").
	go g.publishLoad(500 * time.Millisecond)
	return g
}

// publishLoad periodically writes the gateway's cumulative forwarded bits
// into the replicated map.
func (g *Gateway) publishLoad(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-g.loadStop:
			return
		case <-tick.C:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(g.DeliveredBits()))
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			_ = g.Svc.Set(ctx, loadKey(g.Node.ID()), buf[:])
			cancel()
		}
	}
}

// StopLoadSharing halts the load publisher (used at cluster shutdown).
func (g *Gateway) StopLoadSharing() {
	g.loadOnce.Do(func() { close(g.loadStop) })
}

// ClusterLoads reads every member's last published load figure from the
// local replica.
func (g *Gateway) ClusterLoads() map[core.NodeID]float64 {
	out := make(map[core.NodeID]float64)
	for _, m := range g.Engine.Members() {
		if v, ok := g.Svc.Get(loadKey(m)); ok && len(v) == 8 {
			out[m] = float64(binary.LittleEndian.Uint64(v))
		}
	}
	return out
}

// MACOf maps a member to its fixed MAC address (§3.1: MACs never move).
func MACOf(id core.NodeID) vip.MAC {
	return vip.MAC(fmt.Sprintf("02:rw:00:00:00:%02x", uint32(id)))
}

// Verdict evaluates (and caches) the firewall policy for a connection —
// the per-connection rule walk a real firewall performs at SYN time.
func (g *Gateway) Verdict(f *Flow) Verdict {
	g.mu.Lock()
	defer g.mu.Unlock()
	if v, ok := g.verdicts[f.ID]; ok {
		return v
	}
	v := g.Policy.Evaluate(f.Tuple)
	g.verdicts[f.ID] = v
	return v
}

// Offer queues bits for forwarding in the current tick.
func (g *Gateway) Offer(bits float64) {
	g.mu.Lock()
	g.offeredBits += bits
	g.mu.Unlock()
}

// Filtered records policy-dropped bits.
func (g *Gateway) Filtered(bits float64) {
	g.mu.Lock()
	g.filteredBits += bits
	g.mu.Unlock()
}

// EndTick closes the tick: delivered = min(offered, effective capacity *
// dt), where effective capacity shrinks with the per-peer coordination
// cost. It returns the bits forwarded this tick.
func (g *Gateway) EndTick(dt time.Duration) float64 {
	eff := 1.0
	if peers := len(g.Engine.Members()); peers > 1 && g.SyncCostPerPeer > 0 {
		eff = 1 - g.SyncCostPerPeer*float64(peers-1)
		if eff < 0.5 {
			eff = 0.5
		}
	}
	budget := g.CapacityBps * eff * dt.Seconds()
	g.mu.Lock()
	defer g.mu.Unlock()
	out := g.offeredBits
	if out > budget {
		out = budget
	}
	g.deliveredBits += out
	g.offeredBits = 0
	return out
}

// DeliveredBits reports the total forwarded since start.
func (g *Gateway) DeliveredBits() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.deliveredBits
}

// FilteredBits reports the total policy-dropped bits.
func (g *Gateway) FilteredBits() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.filteredBits
}

// TaskSwitches reads the node's §4.1 CPU-overhead counter.
func (g *Gateway) TaskSwitches() int64 {
	return g.Node.Stats().Counter(stats.MetricTaskSwitches).Load()
}
