package rainwall

import (
	"sync"

	"repro/internal/core"
	"repro/internal/hashmix"
	"repro/internal/wire"
)

// PacketEngine is the kernel-level balancing component of §3.2: it assigns
// traffic to cluster nodes connection by connection. Assignment uses
// rendezvous (highest-random-weight) hashing over the live membership:
// every entry gateway computes the same target for a connection without
// per-connection coordination, and a membership change moves only the
// connections that belonged to the departed node — exactly the sticky
// fail-over behaviour the paper's connection tables provide.
type PacketEngine struct {
	mu      sync.Mutex
	members []core.NodeID
	// conns caches assignments so established connections stay put even
	// when new nodes join (connection stickiness); entries are dropped
	// when their target leaves the membership.
	conns map[uint64]core.NodeID
}

// NewPacketEngine returns an engine with an empty view.
func NewPacketEngine() *PacketEngine {
	return &PacketEngine{conns: make(map[uint64]core.NodeID)}
}

// SetMembers installs the current membership view. Connections assigned to
// departed members are dropped from the table and will be re-assigned by
// the next packet.
func (e *PacketEngine) SetMembers(members []core.NodeID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.members = append(e.members[:0:0], members...)
	alive := make(map[core.NodeID]bool, len(members))
	for _, m := range members {
		alive[m] = true
	}
	for id, target := range e.conns {
		if !alive[target] {
			delete(e.conns, id)
		}
	}
}

// Members returns the engine's current view.
func (e *PacketEngine) Members() []core.NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]core.NodeID(nil), e.members...)
}

// Assign returns the target node for a connection, creating a sticky
// table entry on first sight. It returns NoNode when the view is empty.
func (e *PacketEngine) Assign(connID uint64) core.NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	if target, ok := e.conns[connID]; ok {
		return target
	}
	target := rendezvous(connID, e.members)
	if target != wire.NoNode {
		e.conns[connID] = target
	}
	return target
}

// Forget removes a finished connection from the table.
func (e *PacketEngine) Forget(connID uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.conns, connID)
}

// Table reports the number of tracked connections.
func (e *PacketEngine) Table() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.conns)
}

// rendezvous picks the member with the highest hash weight for the key.
func rendezvous(key uint64, members []core.NodeID) core.NodeID {
	best := wire.NoNode
	var bestW uint64
	for _, m := range members {
		w := mix(key ^ (uint64(m) * 0x9E3779B97F4A7C15))
		if best == wire.NoNode || w > bestW || (w == bestW && m < best) {
			best = m
			bestW = w
		}
	}
	return best
}

// mix is the shared 64-bit finalizer giving well-distributed weights.
func mix(x uint64) uint64 { return hashmix.Mix(x) }
