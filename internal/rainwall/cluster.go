package rainwall

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/vip"
	"repro/internal/wire"
)

// ClusterConfig assembles a Rainwall cluster for simulation.
type ClusterConfig struct {
	// N is the number of gateways.
	N int
	// CapacityBps is each gateway's forwarding capacity. The default,
	// 95 Mbit/s, calibrates the single-node case to the paper's Figure 3
	// so scaling factors are directly comparable.
	CapacityBps float64
	// VIPs is the size of the virtual IP pool; defaults to 2*N so load
	// spreads even at the VIP level.
	VIPs int
	// Policy defaults to AllowAll.
	Policy *Policy
	// SyncCostPerPeer is the per-peer coordination cost fraction; a
	// negative value disables it, zero selects the default 0.02
	// calibrated to Figure 3's efficiency curve.
	SyncCostPerPeer float64
	// Ring overrides the protocol timers (defaults to core.FastRing).
	Ring ring.Config
}

// DefaultCapacityBps calibrates one gateway to the paper's measured
// single-node throughput (95 Mbit/s of web traffic through a Sun Ultra-5
// on Fast Ethernet, §4.2).
const DefaultCapacityBps = 95e6

// DefaultSyncCostPerPeer is the per-peer coordination cost fraction,
// calibrated so cluster efficiency tracks Figure 3 (1.97x at 2 nodes,
// 3.76x at 4).
const DefaultSyncCostPerPeer = 0.02

// Cluster is a running Rainwall cluster plus its simulated subnet.
type Cluster struct {
	TC       *core.TestCluster
	Subnet   *vip.Subnet
	Gateways map[core.NodeID]*Gateway
	Pool     []vip.IP

	mu    sync.Mutex
	down  map[core.NodeID]bool
	byMAC map[vip.MAC]core.NodeID
}

// NewCluster builds and starts a Rainwall cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("rainwall: cluster size %d", cfg.N)
	}
	if cfg.CapacityBps <= 0 {
		cfg.CapacityBps = DefaultCapacityBps
	}
	if cfg.VIPs <= 0 {
		cfg.VIPs = 2 * cfg.N
	}
	if cfg.Policy == nil {
		cfg.Policy = AllowAll()
	}
	switch {
	case cfg.SyncCostPerPeer < 0:
		cfg.SyncCostPerPeer = 0
	case cfg.SyncCostPerPeer == 0:
		cfg.SyncCostPerPeer = DefaultSyncCostPerPeer
	}
	tc, err := core.NewTestCluster(core.ClusterOptions{
		N:          cfg.N,
		Ring:       cfg.Ring,
		DeferStart: true,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		TC:       tc,
		Subnet:   vip.NewSubnet(),
		Gateways: make(map[core.NodeID]*Gateway),
		down:     make(map[core.NodeID]bool),
		byMAC:    make(map[vip.MAC]core.NodeID),
	}
	for i := 0; i < cfg.VIPs; i++ {
		c.Pool = append(c.Pool, vip.IP(fmt.Sprintf("10.0.0.%d", 100+i)))
	}
	for id, node := range tc.Nodes {
		g := newGateway(node, c.Subnet, c.Pool, cfg.CapacityBps, cfg.Policy)
		g.SyncCostPerPeer = cfg.SyncCostPerPeer
		c.Gateways[id] = g
		c.byMAC[MACOf(id)] = id
	}
	tc.StartAll()
	return c, nil
}

// WaitReady blocks until the cluster assembled and every VIP is bound to a
// live gateway's MAC.
func (c *Cluster) WaitReady(timeout time.Duration) error {
	if err := c.TC.WaitAssembled(timeout); err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.allBound() {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("rainwall: VIPs not bound within %v: %v", timeout, c.Subnet.Bindings())
}

func (c *Cluster) allBound() bool {
	for _, ip := range c.Pool {
		mac, ok := c.Subnet.Lookup(ip)
		if !ok {
			return false
		}
		id, known := c.lookupMAC(mac)
		if !known || c.isDown(id) {
			return false
		}
	}
	return true
}

func (c *Cluster) lookupMAC(mac vip.MAC) (core.NodeID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.byMAC[mac]
	return id, ok
}

// FailNode simulates the unplugged network cable of §3.2: the node is cut
// off from the cluster and from traffic, but keeps running.
func (c *Cluster) FailNode(id core.NodeID) {
	c.mu.Lock()
	c.down[id] = true
	c.mu.Unlock()
	c.TC.Net.SetNodeDown(core.Addr(id), true)
}

// RecoverNode plugs the cable back in; the node rejoins via discovery.
func (c *Cluster) RecoverNode(id core.NodeID) {
	c.mu.Lock()
	delete(c.down, id)
	c.mu.Unlock()
	c.TC.Net.SetNodeDown(core.Addr(id), false)
}

func (c *Cluster) isDown(id core.NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[id]
}

// Close stops everything.
func (c *Cluster) Close() {
	for _, g := range c.Gateways {
		g.Monitor.Stop()
		g.VIPMgr.Stop()
		g.StopLoadSharing()
	}
	c.TC.Close()
}

// TickSample records one simulation tick's aggregate result.
type TickSample struct {
	// Elapsed is the simulation time at the end of the tick.
	Elapsed time.Duration
	// DeliveredBits counts bits forwarded by all gateways in the tick.
	DeliveredBits float64
	// LostBits counts offered bits that found no live path (unresolved
	// VIP, dead entry gateway, or dead target node).
	LostBits float64
	// FilteredBits counts bits dropped by the firewall policy.
	FilteredBits float64
}

// RunOptions drive a simulation run.
type RunOptions struct {
	// Ticks and TickLen size the run: total simulated time is
	// Ticks*TickLen.
	Ticks   int
	TickLen time.Duration
	// Paced, when true, advances one tick per TickLen of wall-clock time
	// so the protocol stack reacts in real time (needed for fail-over
	// measurements). Unpaced runs compute steady-state throughput as
	// fast as possible.
	Paced bool
	// OnTick, when non-nil, is invoked before each tick with its index —
	// the hook used to inject failures mid-run.
	OnTick func(tick int)
}

// Run pushes the workload through the cluster and returns per-tick
// samples. The data path per flow and tick is: resolve the flow's VIP on
// the subnet (ARP), enter at the owning gateway, evaluate the firewall
// policy once per connection, let the packet engine pick the target node
// (connection-by-connection balancing, §3.2), and forward subject to the
// target's capacity.
func (c *Cluster) Run(w *Workload, opts RunOptions) []TickSample {
	if opts.Ticks <= 0 {
		opts.Ticks = 100
	}
	if opts.TickLen <= 0 {
		opts.TickLen = 10 * time.Millisecond
	}
	dt := opts.TickLen.Seconds()
	samples := make([]TickSample, 0, opts.Ticks)
	var ticker *time.Ticker
	if opts.Paced {
		ticker = time.NewTicker(opts.TickLen)
		defer ticker.Stop()
	}
	for tick := 0; tick < opts.Ticks; tick++ {
		if opts.OnTick != nil {
			opts.OnTick(tick)
		}
		var lost, filtered float64
		for i := range w.Flows {
			f := &w.Flows[i]
			bits := f.RateBps * dt
			ip := c.Pool[f.VIP%len(c.Pool)]
			mac, ok := c.Subnet.Lookup(ip)
			if !ok {
				lost += bits
				continue
			}
			entryID, known := c.lookupMAC(mac)
			if !known || c.isDown(entryID) {
				lost += bits // ARP still points at the failed gateway
				continue
			}
			entry := c.Gateways[entryID]
			if entry.Verdict(f) == Drop {
				entry.Filtered(bits)
				filtered += bits
				continue
			}
			target := entry.Engine.Assign(f.ID)
			if target == wire.NoNode {
				lost += bits
				continue
			}
			if c.isDown(target) {
				// The entry's view is stale; the connection re-hashes
				// once the membership change propagates.
				lost += bits
				continue
			}
			c.Gateways[target].Offer(bits)
		}
		var delivered float64
		for id, g := range c.Gateways {
			out := g.EndTick(opts.TickLen)
			if c.isDown(id) {
				continue // a dead node forwards nothing
			}
			delivered += out
		}
		samples = append(samples, TickSample{
			Elapsed:       time.Duration(tick+1) * opts.TickLen,
			DeliveredBits: delivered,
			LostBits:      lost,
			FilteredBits:  filtered,
		})
		if opts.Paced {
			<-ticker.C
		}
	}
	return samples
}

// Throughput summarizes samples into an aggregate bits-per-second figure.
func Throughput(samples []TickSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var bits float64
	for _, s := range samples {
		bits += s.DeliveredBits
	}
	return bits / samples[len(samples)-1].Elapsed.Seconds()
}

// MeanTickBits averages delivered bits per tick over the samples; use it
// on sub-slices where Elapsed no longer encodes the tick length.
func MeanTickBits(samples []TickSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var bits float64
	for _, s := range samples {
		bits += s.DeliveredBits
	}
	return bits / float64(len(samples))
}

// SteadyThroughput summarizes only the tail of a run (skipping warm-up
// ticks). samples[0].Elapsed equals the tick length, so the covered
// duration is simply (len-skip) ticks.
func SteadyThroughput(samples []TickSample, skip int) float64 {
	if skip < 0 || skip >= len(samples) {
		return 0
	}
	var bits float64
	for _, s := range samples[skip:] {
		bits += s.DeliveredBits
	}
	dur := time.Duration(len(samples)-skip) * samples[0].Elapsed
	if dur <= 0 {
		return 0
	}
	return bits / dur.Seconds()
}
