// Package rainwall reproduces the Rainwall application of §3.2: a
// high-availability, load-balancing cluster of firewalls built on the
// Raincore Distributed Services. Each gateway runs the session service,
// the data service, the Virtual IP manager and a kernel-level-style packet
// engine that balances traffic connection by connection across the
// cluster; critical-resource monitoring shifts traffic away from failed
// nodes.
//
// The paper's evaluation hardware (Sun Ultra-5 gateways, Check Point
// firewalls, HTTP clients and Apache servers on switched Fast Ethernet) is
// replaced by a capacity-calibrated gateway model and an HTTP-like flow
// generator; see DESIGN.md for why the substitution preserves the §4.2
// scaling behaviour.
package rainwall

import "fmt"

// Proto is a transport protocol in the firewall policy.
type Proto uint8

// Protocols understood by the policy engine.
const (
	TCP Proto = iota
	UDP
)

// FiveTuple identifies a connection.
type FiveTuple struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// String renders the tuple for logs.
func (t FiveTuple) String() string {
	p := "tcp"
	if t.Proto == UDP {
		p = "udp"
	}
	return fmt.Sprintf("%s %d.%d.%d.%d:%d -> %d.%d.%d.%d:%d",
		p,
		t.SrcIP>>24, t.SrcIP>>16&0xff, t.SrcIP>>8&0xff, t.SrcIP&0xff, t.SrcPort,
		t.DstIP>>24, t.DstIP>>16&0xff, t.DstIP>>8&0xff, t.DstIP&0xff, t.DstPort)
}

// Verdict is a policy decision.
type Verdict uint8

// Policy verdicts.
const (
	Accept Verdict = iota
	Drop
)

// Rule matches connections; zero fields are wildcards (except ports, which
// use [Lo, Hi] ranges — a zero Hi means "any").
type Rule struct {
	Proto     *Proto
	SrcNet    uint32 // network address, with SrcMask significant bits
	SrcMask   uint8
	DstNet    uint32
	DstMask   uint8
	DstPortLo uint16
	DstPortHi uint16
	Verdict   Verdict
}

func maskMatch(addr, net uint32, bits uint8) bool {
	if bits == 0 {
		return true
	}
	mask := ^uint32(0) << (32 - uint32(bits))
	return addr&mask == net&mask
}

// Matches reports whether the rule applies to the tuple.
func (r Rule) Matches(t FiveTuple) bool {
	if r.Proto != nil && *r.Proto != t.Proto {
		return false
	}
	if !maskMatch(t.SrcIP, r.SrcNet, r.SrcMask) {
		return false
	}
	if !maskMatch(t.DstIP, r.DstNet, r.DstMask) {
		return false
	}
	if r.DstPortHi != 0 {
		if t.DstPort < r.DstPortLo || t.DstPort > r.DstPortHi {
			return false
		}
	} else if r.DstPortLo != 0 && t.DstPort != r.DstPortLo {
		return false
	}
	return true
}

// Policy is an ordered rule chain with a default verdict, the shape every
// firewall of the era used.
type Policy struct {
	Rules   []Rule
	Default Verdict
}

// Evaluate returns the verdict of the first matching rule.
func (p *Policy) Evaluate(t FiveTuple) Verdict {
	for _, r := range p.Rules {
		if r.Matches(t) {
			return r.Verdict
		}
	}
	return p.Default
}

// AllowAll is the permissive policy used when only load behaviour matters.
func AllowAll() *Policy { return &Policy{Default: Accept} }

// WebOnly allows TCP to ports 80 and 443 and drops everything else — the
// classic front-of-server-farm policy from the paper's Figure 1 scenario.
func WebOnly() *Policy {
	tcp := TCP
	return &Policy{
		Rules: []Rule{
			{Proto: &tcp, DstPortLo: 80, DstPortHi: 80, Verdict: Accept},
			{Proto: &tcp, DstPortLo: 443, DstPortHi: 443, Verdict: Accept},
		},
		Default: Drop,
	}
}
