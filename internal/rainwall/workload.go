package rainwall

import (
	"math"
	"math/rand"
)

// Flow is one client connection traversing the cluster: HTTP-like traffic
// from a client toward the server farm behind the firewalls.
type Flow struct {
	ID    uint64
	Tuple FiveTuple
	// VIP indexes the virtual IP the client resolved for the cluster.
	VIP int
	// RateBps is the flow's offered load in bits per second.
	RateBps float64
}

// Workload is a set of concurrent flows with a target aggregate rate.
type Workload struct {
	Flows []Flow
	// TotalBps is the aggregate offered load.
	TotalBps float64
}

// WorkloadConfig parameterizes the generator.
type WorkloadConfig struct {
	// Seed makes the workload reproducible.
	Seed int64
	// Flows is the number of concurrent connections.
	Flows int
	// TotalBps is the aggregate offered load in bits per second.
	TotalBps float64
	// VIPs is the number of virtual IPs clients spread across.
	VIPs int
	// WebTraffic aims flows at ports 80/443 (matching the WebOnly
	// policy); otherwise destination ports are uniform in [1, 65535].
	WebTraffic bool
}

// NewWorkload generates flows whose sizes follow a heavy-tailed lognormal
// distribution (the classic shape of web transfer sizes), normalized so
// they sum to TotalBps.
func NewWorkload(cfg WorkloadConfig) *Workload {
	if cfg.Flows <= 0 {
		cfg.Flows = 100
	}
	if cfg.VIPs <= 0 {
		cfg.VIPs = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	raw := make([]float64, cfg.Flows)
	sum := 0.0
	for i := range raw {
		// Lognormal with sigma 1.0: a few elephants, many mice.
		raw[i] = math.Exp(rng.NormFloat64())
		sum += raw[i]
	}
	w := &Workload{TotalBps: cfg.TotalBps}
	for i := 0; i < cfg.Flows; i++ {
		dstPort := uint16(1 + rng.Intn(65535))
		if cfg.WebTraffic {
			if rng.Intn(4) == 0 {
				dstPort = 443
			} else {
				dstPort = 80
			}
		}
		f := Flow{
			// Connection IDs embed the seed so distinct workloads model
			// distinct connections (per-connection caches are sticky).
			ID: uint64(cfg.Seed)<<32 | uint64(i+1),
			Tuple: FiveTuple{
				SrcIP:   0x0A010000 | uint32(rng.Intn(1<<16)), // 10.1.x.x clients
				DstIP:   0xC0A80000 | uint32(rng.Intn(1<<8)),  // 192.168.0.x servers
				SrcPort: uint16(1024 + rng.Intn(64000)),
				DstPort: dstPort,
				Proto:   TCP,
			},
			VIP:     rng.Intn(cfg.VIPs),
			RateBps: cfg.TotalBps * raw[i] / sum,
		}
		w.Flows = append(w.Flows, f)
	}
	return w
}

// Churn models connection turnover: every interval, Fraction of the flows
// end and are replaced by fresh connections (new IDs, same aggregate
// rate). Real web traffic is dominated by short connections, and churn is
// what lets a recovered gateway win traffic back despite connection
// stickiness.
type Churn struct {
	// Every n ticks, replace Fraction of the flows.
	EveryTicks int
	Fraction   float64
	rng        *rand.Rand
	nextID     uint64
}

// NewChurn builds a churn model.
func NewChurn(seed int64, everyTicks int, fraction float64) *Churn {
	if everyTicks <= 0 {
		everyTicks = 10
	}
	if fraction <= 0 || fraction > 1 {
		fraction = 0.1
	}
	return &Churn{
		EveryTicks: everyTicks,
		Fraction:   fraction,
		rng:        rand.New(rand.NewSource(seed)),
		nextID:     uint64(seed)<<40 | 1<<39, // disjoint from workload IDs
	}
}

// Apply replaces a fraction of flows with fresh connections when the tick
// is on the churn boundary.
func (c *Churn) Apply(w *Workload, tick int) {
	if tick == 0 || tick%c.EveryTicks != 0 {
		return
	}
	n := int(float64(len(w.Flows)) * c.Fraction)
	for k := 0; k < n; k++ {
		i := c.rng.Intn(len(w.Flows))
		c.nextID++
		w.Flows[i].ID = c.nextID // a new connection with the same traffic profile
	}
}
