package rainwall

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

func startRainwall(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{N: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.WaitReady(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSingleNodeCapacityBound(t *testing.T) {
	c := startRainwall(t, 1)
	w := NewWorkload(WorkloadConfig{Seed: 1, Flows: 200, TotalBps: 600e6, VIPs: len(c.Pool)})
	samples := c.Run(w, RunOptions{Ticks: 100, TickLen: 10 * time.Millisecond})
	got := SteadyThroughput(samples, 10)
	if got > DefaultCapacityBps*1.01 {
		t.Fatalf("single node forwarded %.1f Mbps, capacity is %.1f", got/1e6, DefaultCapacityBps/1e6)
	}
	if got < DefaultCapacityBps*0.95 {
		t.Fatalf("single node forwarded %.1f Mbps under overload, want close to capacity", got/1e6)
	}
}

func TestThroughputScalesWithNodes(t *testing.T) {
	measure := func(n int) float64 {
		c := startRainwall(t, n)
		defer c.Close()
		w := NewWorkload(WorkloadConfig{Seed: 2, Flows: 400, TotalBps: 600e6, VIPs: len(c.Pool)})
		samples := c.Run(w, RunOptions{Ticks: 100, TickLen: 10 * time.Millisecond})
		return SteadyThroughput(samples, 10)
	}
	t1 := measure(1)
	t2 := measure(2)
	t4 := measure(4)
	s2 := t2 / t1
	s4 := t4 / t1
	// Figure 3's shape: near-2x at two nodes, near-4x (mildly sublinear)
	// at four.
	if s2 < 1.7 || s2 > 2.05 {
		t.Fatalf("2-node scaling = %.2f (t1=%.1f t2=%.1f Mbps), want ~1.97", s2, t1/1e6, t2/1e6)
	}
	if s4 < 3.2 || s4 > 4.05 {
		t.Fatalf("4-node scaling = %.2f (t1=%.1f t4=%.1f Mbps), want ~3.76", s4, t1/1e6, t4/1e6)
	}
	if s4 <= s2 {
		t.Fatalf("scaling not monotone: s2=%.2f s4=%.2f", s2, s4)
	}
}

func TestPolicyFiltersTraffic(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 2, Policy: WebOnly()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.WaitReady(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Non-web traffic: every flow is dropped by the policy.
	w := NewWorkload(WorkloadConfig{Seed: 3, Flows: 50, TotalBps: 50e6, VIPs: len(c.Pool), WebTraffic: false})
	// Force all ports off 80/443 so the whole workload is droppable.
	for i := range w.Flows {
		if p := w.Flows[i].Tuple.DstPort; p == 80 || p == 443 {
			w.Flows[i].Tuple.DstPort = 8080
		}
	}
	samples := c.Run(w, RunOptions{Ticks: 20, TickLen: 10 * time.Millisecond})
	if got := Throughput(samples); got != 0 {
		t.Fatalf("non-web traffic forwarded %.1f Mbps through WebOnly policy", got/1e6)
	}
	var filtered float64
	for _, s := range samples {
		filtered += s.FilteredBits
	}
	if filtered == 0 {
		t.Fatal("no bits recorded as filtered")
	}
	// Web traffic passes.
	w2 := NewWorkload(WorkloadConfig{Seed: 4, Flows: 50, TotalBps: 50e6, VIPs: len(c.Pool), WebTraffic: true})
	samples = c.Run(w2, RunOptions{Ticks: 20, TickLen: 10 * time.Millisecond})
	if got := Throughput(samples); got < 45e6 {
		t.Fatalf("web traffic forwarded only %.1f Mbps", got/1e6)
	}
}

func TestFailoverUnderTwoSeconds(t *testing.T) {
	// The paper's §3.2 claim: a client sees about a 2-second hiccup when
	// a gateway's cable is pulled, then traffic fully resumes. Paper-like
	// timers; paced run so the protocol reacts in real time.
	c, err := NewCluster(ClusterConfig{N: 2, Ring: core.PaperRing()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.WaitReady(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(WorkloadConfig{Seed: 5, Flows: 100, TotalBps: 100e6, VIPs: len(c.Pool)})
	tick := 20 * time.Millisecond
	failAt := 50
	samples := c.Run(w, RunOptions{
		Ticks:   300,
		TickLen: tick,
		Paced:   true,
		OnTick: func(i int) {
			if i == failAt {
				c.FailNode(2)
			}
		},
	})
	preTick := MeanTickBits(samples[10:failAt])
	// Find the first tick after the failure where delivery is back to
	// >= 90% of the pre-failure rate and stays there for 10 ticks.
	recovered := -1
	for i := failAt; i < len(samples)-10; i++ {
		ok := true
		for j := i; j < i+10; j++ {
			if samples[j].DeliveredBits < 0.9*preTick {
				ok = false
				break
			}
		}
		if ok {
			recovered = i
			break
		}
	}
	if recovered < 0 {
		t.Fatalf("traffic never recovered after failover (pre=%.1f Mbps)", preTick/tick.Seconds()/1e6)
	}
	// The failure must actually be visible: some tick under the threshold.
	dipped := false
	for i := failAt; i < recovered; i++ {
		if samples[i].DeliveredBits < 0.9*preTick {
			dipped = true
		}
	}
	if recovered > failAt && !dipped {
		t.Fatal("recovery index moved without an observable dip")
	}
	gap := time.Duration(recovered-failAt) * tick
	if gap > 2*time.Second {
		t.Fatalf("failover took %v, paper promises under two seconds", gap)
	}
	t.Logf("failover gap = %v (pre-failure %.1f Mbps)", gap, preTick/tick.Seconds()/1e6)
}

func TestRecoveredNodeTakesTrafficBack(t *testing.T) {
	c := startRainwall(t, 2)
	w := NewWorkload(WorkloadConfig{Seed: 6, Flows: 100, TotalBps: 150e6, VIPs: len(c.Pool)})
	c.FailNode(2)
	if err := c.TC.WaitMembership(15*time.Second, 1); err != nil {
		t.Fatal(err)
	}
	// All VIPs on node 1: capacity-limited to 95 Mbps.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && !c.allBound() {
		time.Sleep(time.Millisecond)
	}
	samples := c.Run(w, RunOptions{Ticks: 50, TickLen: 10 * time.Millisecond})
	solo := SteadyThroughput(samples, 5)
	if solo > DefaultCapacityBps*1.01 {
		t.Fatalf("degraded cluster forwarded %.1f Mbps above single-node capacity", solo/1e6)
	}
	// Plug the cable back in: the node merges back. Established
	// connections stay where they are (stickiness), so offer new
	// connections — they balance across both nodes and throughput rises.
	c.RecoverNode(2)
	if err := c.TC.WaitAssembled(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(15 * time.Second)
	seed := int64(100)
	for time.Now().Before(deadline) {
		seed++
		fresh := NewWorkload(WorkloadConfig{Seed: seed, Flows: 100, TotalBps: 150e6, VIPs: len(c.Pool)})
		samples = c.Run(fresh, RunOptions{Ticks: 30, TickLen: 10 * time.Millisecond})
		if SteadyThroughput(samples, 5) > 1.4*DefaultCapacityBps {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("throughput stayed at %.1f Mbps after recovery", SteadyThroughput(samples, 5)/1e6)
}

func TestPacketEngineSticky(t *testing.T) {
	e := NewPacketEngine()
	e.SetMembers([]core.NodeID{1, 2, 3})
	first := e.Assign(42)
	if first == wire.NoNode {
		t.Fatal("no assignment")
	}
	// A new member joining must not move the established connection.
	e.SetMembers([]core.NodeID{1, 2, 3, 4})
	if got := e.Assign(42); got != first {
		t.Fatalf("connection moved %v -> %v on join", first, got)
	}
	// Removing the target reassigns to a survivor.
	var survivors []core.NodeID
	for _, m := range []core.NodeID{1, 2, 3, 4} {
		if m != first {
			survivors = append(survivors, m)
		}
	}
	e.SetMembers(survivors)
	second := e.Assign(42)
	if second == first || second == wire.NoNode {
		t.Fatalf("reassignment after failure = %v", second)
	}
}

func TestPacketEngineBalance(t *testing.T) {
	e := NewPacketEngine()
	members := []core.NodeID{1, 2, 3, 4}
	e.SetMembers(members)
	counts := map[core.NodeID]int{}
	const conns = 40000
	for i := uint64(0); i < conns; i++ {
		counts[e.Assign(i)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / conns
		if share < 0.22 || share > 0.28 {
			t.Fatalf("node %v got %.1f%% of connections, want ~25%%", m, share*100)
		}
	}
}

func TestPacketEngineForget(t *testing.T) {
	e := NewPacketEngine()
	e.SetMembers([]core.NodeID{1, 2})
	e.Assign(7)
	if e.Table() != 1 {
		t.Fatalf("table = %d", e.Table())
	}
	e.Forget(7)
	if e.Table() != 0 {
		t.Fatalf("table after forget = %d", e.Table())
	}
}

func TestPolicyRules(t *testing.T) {
	tcp := TCP
	p := &Policy{
		Rules: []Rule{
			{Proto: &tcp, DstPortLo: 22, Verdict: Drop},
			{SrcNet: 0x0A000000, SrcMask: 8, Verdict: Accept},
		},
		Default: Drop,
	}
	cases := []struct {
		t    FiveTuple
		want Verdict
	}{
		{FiveTuple{SrcIP: 0x0A010101, DstPort: 22, Proto: TCP}, Drop},   // rule 1
		{FiveTuple{SrcIP: 0x0A010101, DstPort: 80, Proto: TCP}, Accept}, // rule 2
		{FiveTuple{SrcIP: 0x0B010101, DstPort: 80, Proto: TCP}, Drop},   // default
		{FiveTuple{SrcIP: 0x0A010101, DstPort: 22, Proto: UDP}, Accept}, // rule 1 is TCP-only
	}
	for i, c := range cases {
		if got := p.Evaluate(c.t); got != c.want {
			t.Fatalf("case %d (%v): verdict %v, want %v", i, c.t, got, c.want)
		}
	}
}

func TestWorkloadGenerator(t *testing.T) {
	w := NewWorkload(WorkloadConfig{Seed: 9, Flows: 500, TotalBps: 100e6, VIPs: 4, WebTraffic: true})
	if len(w.Flows) != 500 {
		t.Fatalf("flows = %d", len(w.Flows))
	}
	var sum float64
	for _, f := range w.Flows {
		sum += f.RateBps
		if f.VIP < 0 || f.VIP >= 4 {
			t.Fatalf("flow VIP = %d", f.VIP)
		}
		if p := f.Tuple.DstPort; p != 80 && p != 443 {
			t.Fatalf("web workload flow aimed at port %d", p)
		}
	}
	if sum < 99e6 || sum > 101e6 {
		t.Fatalf("rates sum to %.1f Mbps, want 100", sum/1e6)
	}
	// Determinism.
	w2 := NewWorkload(WorkloadConfig{Seed: 9, Flows: 500, TotalBps: 100e6, VIPs: 4, WebTraffic: true})
	for i := range w.Flows {
		if w.Flows[i].Tuple != w2.Flows[i].Tuple || w.Flows[i].RateBps != w2.Flows[i].RateBps {
			t.Fatal("workload not deterministic for equal seeds")
		}
	}
}

func TestFiveTupleString(t *testing.T) {
	s := FiveTuple{SrcIP: 0x0A000001, DstIP: 0xC0A80001, SrcPort: 1234, DstPort: 80, Proto: TCP}.String()
	if s != "tcp 10.0.0.1:1234 -> 192.168.0.1:80" {
		t.Fatalf("String() = %q", s)
	}
}

func TestLoadFiguresSharedAcrossCluster(t *testing.T) {
	c := startRainwall(t, 2)
	w := NewWorkload(WorkloadConfig{Seed: 12, Flows: 100, TotalBps: 100e6, VIPs: len(c.Pool)})
	c.Run(w, RunOptions{Ticks: 30, TickLen: 10 * time.Millisecond})
	// Both gateways forwarded traffic; each replica eventually shows the
	// other's load figure via the data service.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		loads := c.Gateways[1].ClusterLoads()
		if len(loads) == 2 && loads[2] > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("load figures not shared: %v", c.Gateways[1].ClusterLoads())
}

func TestChurnRebalancesAfterRecovery(t *testing.T) {
	// With connection churn, a recovered gateway wins traffic back
	// automatically: fresh connections hash across the full membership.
	c := startRainwall(t, 2)
	c.FailNode(2)
	if err := c.TC.WaitMembership(15*time.Second, 1); err != nil {
		t.Fatal(err)
	}
	c.RecoverNode(2)
	if err := c.TC.WaitAssembled(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(WorkloadConfig{Seed: 21, Flows: 200, TotalBps: 150e6, VIPs: len(c.Pool)})
	churn := NewChurn(22, 5, 0.2)
	deadline := time.Now().Add(20 * time.Second)
	var got float64
	for time.Now().Before(deadline) {
		samples := c.Run(w, RunOptions{
			Ticks:   60,
			TickLen: 10 * time.Millisecond,
			OnTick:  func(tick int) { churn.Apply(w, tick) },
		})
		got = SteadyThroughput(samples, 30)
		if got > 1.4*DefaultCapacityBps {
			return
		}
	}
	t.Fatalf("churned traffic stayed at %.1f Mbps; recovered node never won share", got/1e6)
}

func TestChurnPreservesAggregateRate(t *testing.T) {
	w := NewWorkload(WorkloadConfig{Seed: 30, Flows: 100, TotalBps: 50e6, VIPs: 2})
	churn := NewChurn(31, 1, 0.5)
	before := 0.0
	for _, f := range w.Flows {
		before += f.RateBps
	}
	for tick := 1; tick <= 10; tick++ {
		churn.Apply(w, tick)
	}
	after := 0.0
	ids := map[uint64]bool{}
	for _, f := range w.Flows {
		after += f.RateBps
		if ids[f.ID] {
			t.Fatal("duplicate connection ID after churn")
		}
		ids[f.ID] = true
	}
	if before != after {
		t.Fatalf("churn changed the aggregate rate: %.1f -> %.1f", before/1e6, after/1e6)
	}
}
