package raincore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dds"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Cluster is the unified handle on one node's membership in a Raincore
// deployment: the sharded multi-ring runtime, the sharded distributed
// data service, the cross-shard transaction coordinator and (optionally)
// the admin HTTP surface, built and started by one Open call.
//
// Every operation takes a context first and transparently retries the
// retryable failures the layers below surface — a Set racing an elastic
// grow, a Lock racing a snapshot barrier, a transaction aborted by an
// epoch flip — waking at the next routing-table event rather than
// polling blindly ("epoch-following" backoff). Callers therefore never
// meet ErrResharding, ErrSnapshotting, ErrEpochChanged or ErrTxnAborted
// unless their RetryPolicy's attempt budget runs out; errors that do
// surface are *Error values whose Retryable method (and the package's
// IsRetryable) give the machine-checkable classification.
type Cluster struct {
	rt          *core.Runtime
	dds         *dds.Sharded
	txn         *txn.Coordinator
	reg         *stats.Registry
	policy      RetryPolicy
	defaultRead []ReadOption
	backend     wal.Backend

	admin   *http.Server
	adminLn net.Listener

	// Joined latch: with peers configured, a freshly booted member that
	// seeded its own singleton group has not yet merged with them — its
	// pre-merge writes would be discarded by the lowest-ID-wins merge.
	expectPeers bool
	joined      atomic.Bool

	closed   atomic.Bool
	closeMu  sync.Mutex
	closeErr error
}

// RetryPolicy tunes the facade's built-in retry layer.
type RetryPolicy struct {
	// MaxAttempts bounds the tries per operation; <= 0 retries until the
	// operation's context is done. The first try counts, so 1 disables
	// retries entirely.
	MaxAttempts int
	// BaseDelay and MaxDelay bound the exponential backoff between
	// attempts. The retry layer also wakes early at the next
	// routing-table publication or handoff abort, so the delay is a cap
	// on staleness, not the expected wait.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetryPolicy retries until the context is done, backing off from
// 1ms to 100ms between attempts (with epoch-following early wake-up).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 0, BaseDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond}
}

// delay returns the capped exponential backoff for the attempt (1-based).
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 100 * time.Millisecond
	}
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// defaultSnapshotEvery is the WAL compaction threshold when
// WithSnapshotEvery is not given.
const defaultSnapshotEvery = 4 << 20

// openConfig accumulates Open's functional options.
type openConfig struct {
	id          NodeID
	rings       int
	ring        RingConfig
	ringSet     bool
	transport   TransportConfig
	peers       map[NodeID][]Addr
	adminAddr   string
	policy      RetryPolicy
	reg         *stats.Registry
	trace       *trace.Log
	handlers    func(RingID) Handlers
	defaultRead []ReadOption

	storageDir     string
	storageBackend wal.Backend
	fsyncMode      string
	snapshotEvery  int64

	batching    WriteBatching
	batchingSet bool
}

// Option customizes Open.
type Option func(*openConfig)

// WithID sets this node's identity (required, non-zero).
func WithID(id NodeID) Option { return func(o *openConfig) { o.id = id } }

// WithRings sets the initial shard count S (default 1). Grow and Shrink
// change it at runtime.
func WithRings(n int) Option { return func(o *openConfig) { o.rings = n } }

// WithRingConfig sets the per-ring protocol template (timers, eligible
// membership, MaxBatch). When the template's Eligible list is empty,
// Open fills it with this node plus every WithPeer peer.
func WithRingConfig(rc RingConfig) Option {
	return func(o *openConfig) { o.ring, o.ringSet = rc, true }
}

// WithTransportConfig tunes the shared reliable unicast layer.
func WithTransportConfig(tc TransportConfig) Option {
	return func(o *openConfig) { o.transport = tc }
}

// WithPeer registers a peer's physical addresses; repeat per peer. Peers
// are reachable by every ring through the shared transport and, unless
// WithRingConfig supplies an explicit Eligible list, become part of the
// eligible membership.
func WithPeer(id NodeID, addrs ...Addr) Option {
	return func(o *openConfig) {
		if o.peers == nil {
			o.peers = make(map[NodeID][]Addr)
		}
		o.peers[id] = append(o.peers[id], addrs...)
	}
}

// WithAdmin serves the HTTP admin surface on addr: GET /health, GET
// /routing, GET /snapshot, POST /rings/add, POST /rings/remove?ring=N.
// Open fails if the address cannot be bound; AdminAddr reports the bound
// address (useful with ":0").
func WithAdmin(addr string) Option { return func(o *openConfig) { o.adminAddr = addr } }

// WithRetryPolicy replaces the DefaultRetryPolicy of the built-in retry
// layer.
func WithRetryPolicy(p RetryPolicy) Option { return func(o *openConfig) { o.policy = p } }

// WithDefaultReadOptions sets the consistency mode Cluster.Get applies
// when a call passes no ReadOption of its own — a cluster-wide default
// set once at Open instead of repeated per call (a gateway fronting the
// cluster sets its configured read mode this way). Explicit options on a
// Get call replace the default entirely — per-call WithEventual()
// overrides a stricter default. With no default configured, bare Gets
// keep the historical allocation-free eventual fast path.
func WithDefaultReadOptions(opts ...ReadOption) Option {
	return func(o *openConfig) { o.defaultRead = append(o.defaultRead, opts...) }
}

// WithStorage persists every ring replica's ordered applies to a
// checksummed write-ahead log under dir and restores them at the next
// Open: the node replays its last snapshot plus the log tail locally,
// then rejoins the cluster and fast-forwards through a delta state
// transfer covering only the ops it missed — instead of a full keyspace
// retransfer. The routing table (ring set and epoch) persists alongside,
// so a restarted node re-spawns the rings it hosted at crash time. Tune
// with WithFsyncMode and WithSnapshotEvery.
func WithStorage(dir string) Option { return func(o *openConfig) { o.storageDir = dir } }

// WithStorageBackend substitutes the durability backend WithStorage
// would build — NewMemoryStorage() gives tests crash-restart semantics
// (the backend survives a Close and recovers in-process) without disk.
// It overrides WithStorage when both are given.
func WithStorageBackend(b StorageBackend) Option {
	return func(o *openConfig) { o.storageBackend = b }
}

// WithFsyncMode selects the WAL durability point for WithStorage:
// "always" fsyncs every append, "batch" (the default) fsyncs on a short
// timer so a crash loses at most the last few milliseconds locally (the
// replicas still hold the data — recovery fast-forwards through state
// transfer), "none" leaves flushing to the OS.
func WithFsyncMode(mode string) Option { return func(o *openConfig) { o.fsyncMode = mode } }

// WithSnapshotEvery compacts a ring's WAL into an atomic snapshot once
// the log exceeds n bytes (default 4 MiB; <= 0 keeps the default).
func WithSnapshotEvery(n int64) Option { return func(o *openConfig) { o.snapshotEvery = n } }

// WriteBatching tunes the per-shard write coalescer: concurrent
// Set/Delete calls on one member merge into a single ordered multi-op
// frame (one multicast, one WAL record, one fsync for the batch).
// Batching is ON by default with Linger 0 — the self-clocking mode whose
// single-writer latency matches the pre-batching path exactly; this
// option only overrides the defaults or disables it. See the README's
// "Write path tuning" section.
type WriteBatching = dds.BatchConfig

// WithWriteBatching overrides the default write-coalescer settings on
// every shard (including rings attached by later grows). Zero-valued
// size fields keep their defaults (128 ops / 48 KiB); Disabled reverts
// the write path to one ordered frame per op.
func WithWriteBatching(cfg WriteBatching) Option {
	return func(o *openConfig) { o.batching, o.batchingSet = cfg, true }
}

// WithStats supplies the metric registry the runtime, transport, shards
// and retry layer record into (default: a private registry, readable via
// Cluster.Stats).
func WithStats(reg *StatsRegistry) Option { return func(o *openConfig) { o.reg = reg } }

// WithTrace records protocol events of every ring into the log.
func WithTrace(tl *TraceLog) Option { return func(o *openConfig) { o.trace = tl } }

// WithHandlers registers per-ring application handlers (ordered
// deliveries that are not data-service operations, membership events,
// system events, shutdown). fn is invoked once per ring, including rings
// spawned by later grows.
func WithHandlers(fn func(RingID) Handlers) Option {
	return func(o *openConfig) { o.handlers = fn }
}

// Open assembles and starts one cluster member over the given transport
// conns: the sharded multi-ring runtime, one data-service replica per
// ring routed by consistent hashing, the cross-shard transaction
// coordinator pinned to the routing epoch, and (with WithAdmin) the
// admin HTTP surface. It replaces the pre-facade composition older
// callers assembled by hand (runtime constructor, data-service attach,
// txn-coordinator constructor, hand-rolled retry loops).
//
// The cluster is started but not necessarily assembled when Open
// returns; peers discover each other through the BODYODOR protocol. Use
// WaitMembers to block until the membership converges.
func Open(ctx context.Context, conns []PacketConn, opts ...Option) (*Cluster, error) {
	o := openConfig{rings: 1, policy: DefaultRetryPolicy()}
	for _, opt := range opts {
		opt(&o)
	}
	if err := ctx.Err(); err != nil {
		return nil, opError("open", "", err)
	}
	if o.id == NoNode {
		return nil, opError("open", "", errors.New("node ID is required (WithID)"))
	}
	if !o.ringSet {
		o.ring = PaperRing()
	}
	if len(o.ring.Eligible) == 0 {
		o.ring.Eligible = append(o.ring.Eligible, o.id)
		for pid := range o.peers {
			o.ring.Eligible = append(o.ring.Eligible, pid)
		}
	}
	if o.reg == nil {
		o.reg = stats.NewRegistry()
	}
	fsync := wal.FsyncBatch
	if o.fsyncMode != "" {
		var err error
		if fsync, err = wal.ParseFsyncMode(o.fsyncMode); err != nil {
			return nil, opError("open", "", err)
		}
	}
	snapEvery := o.snapshotEvery
	if snapEvery <= 0 {
		snapEvery = defaultSnapshotEvery
	}
	backend := o.storageBackend
	if backend == nil && o.storageDir != "" {
		b, err := wal.Open(o.storageDir, wal.Options{Fsync: fsync, Stats: o.reg})
		if err != nil {
			return nil, opError("open", "", err)
		}
		backend = b
	}
	rcfg := core.RuntimeConfig{
		ID:        o.id,
		Rings:     o.rings,
		Ring:      o.ring,
		Transport: o.transport,
		Registry:  o.reg,
		Trace:     o.trace,
	}
	if backend != nil {
		// A persisted routing table trumps WithRings: the node re-spawns
		// the ring set it hosted at crash time on the epoch it last saw,
		// so its WAL replays line up ring-for-ring.
		meta, ok, err := backend.LoadRouting()
		if err != nil {
			_ = backend.Close()
			return nil, opError("open", "", err)
		}
		if ok && len(meta.Rings) > 0 {
			for _, rid := range meta.Rings {
				rcfg.RingIDs = append(rcfg.RingIDs, RingID(rid))
			}
			rcfg.RoutingEpoch = meta.Epoch
			// This is a restart, not a first boot: re-enter through the
			// ordered join path so the survivors fast-forward this node's
			// recovered replicas with a delta instead of a full resync.
			rcfg.Rejoin = true
		}
	}
	rt, err := core.NewShardedRuntime(rcfg, conns)
	if err != nil {
		if backend != nil {
			_ = backend.Close()
		}
		return nil, opError("open", "", err)
	}
	sharded, err := dds.AttachSharded(rt)
	if err != nil {
		rt.Close()
		if backend != nil {
			_ = backend.Close()
		}
		return nil, opError("open", "", err)
	}
	if o.batchingSet {
		sharded.SetWriteBatching(o.batching)
	}
	c := &Cluster{
		rt:          rt,
		dds:         sharded,
		txn:         txn.New(sharded, txn.WithRuntimePin(rt), txn.WithStats(o.reg)),
		reg:         o.reg,
		policy:      o.policy,
		defaultRead: o.defaultRead,
		backend:     backend,
		expectPeers: len(o.peers) > 0,
	}
	if backend != nil {
		// Attach each active ring's log and replay it locally before the
		// rings start: snapshot plus tail rebuild the replica's state and
		// applied vector, so the join-time state transfer only has to
		// cover the gap (a delta, not the keyspace).
		for _, rid := range rt.Routing().Rings {
			log, err := backend.Ring(int(rid))
			if err == nil {
				svc := sharded.Shard(int(rid))
				svc.SetStorage(log, snapEvery)
				_, err = svc.Recover()
			}
			if err != nil {
				rt.Close()
				_ = backend.Close()
				return nil, opError("open", "", fmt.Errorf("recover ring %v: %w", rid, err))
			}
		}
		// Rings grown later start empty (the handoff transfers their
		// slice); they only need a log attached for future appends.
		rt.OnRingSpawn(func(rid RingID, _ *Node) {
			if log, err := backend.Ring(int(rid)); err == nil {
				if svc := sharded.Shard(int(rid)); svc != nil {
					svc.SetStorage(log, snapEvery)
				}
			}
		})
		saveRouting := func(v RoutingView) {
			rings := make([]int, len(v.Rings))
			for i, r := range v.Rings {
				rings[i] = int(r)
			}
			_ = backend.SaveRouting(wal.RoutingMeta{Epoch: v.Epoch, Rings: rings})
		}
		saveRouting(rt.Routing())
		rt.RoutingWatch(saveRouting)
	}
	if o.handlers != nil {
		for _, rid := range rt.Routing().Rings {
			sharded.Shard(int(rid)).SetAppHandlers(o.handlers(rid))
		}
		// The dds spawn hook registered first (inside AttachSharded), so
		// the shard exists by the time this one runs for a grown ring.
		rt.OnRingSpawn(func(rid RingID, _ *Node) {
			sharded.Shard(int(rid)).SetAppHandlers(o.handlers(rid))
		})
	}
	for pid, addrs := range o.peers {
		rt.SetPeer(pid, addrs)
	}
	if o.adminAddr != "" {
		ln, err := net.Listen("tcp", o.adminAddr)
		if err != nil {
			rt.Close()
			return nil, opError("open", "", fmt.Errorf("admin listen %s: %w", o.adminAddr, err))
		}
		c.adminLn = ln
		c.admin = &http.Server{Handler: c.adminMux()}
		go func() { _ = c.admin.Serve(ln) }()
	}
	rt.Start()
	return c, nil
}

// retry runs fn under the cluster's RetryPolicy: retryable failures are
// absorbed (counted in the counter metric) with epoch-following backoff
// — the wait wakes at the next routing-table publication or handoff
// abort, capped by the policy's delay — until fn succeeds, the failure
// is permanent, the attempt budget runs out, or ctx is done. The
// terminal error is wrapped as *Error{Op: op, Key: key}.
func retry[T any](ctx context.Context, c *Cluster, op, key, counter string, fn func() (T, error)) (T, error) {
	var attempt int
	for {
		v, err := fn()
		if err == nil {
			return v, nil
		}
		attempt++
		if !IsRetryable(err) {
			return v, opError(op, key, err)
		}
		if cerr := ctx.Err(); cerr != nil {
			// The context died while a retryable condition was up. The
			// taxonomy must not classify this terminal error retryable —
			// the caller's own retry loop would spin on a dead context —
			// so the context error is the wrapped cause and the retryable
			// one is flattened into the message.
			return v, opError(op, key, fmt.Errorf("gave up retrying (%v): %w", err, cerr))
		}
		if c.policy.MaxAttempts > 0 && attempt >= c.policy.MaxAttempts {
			return v, opError(op, key, err)
		}
		c.reg.Counter(counter).Inc()
		sig := c.rt.RoutingSignal()
		select {
		case <-ctx.Done():
			return v, opError(op, key, ctx.Err())
		case <-sig:
		case <-time.After(c.policy.delay(attempt)):
		}
	}
}

// retryErr is retry for operations with no result value.
func retryErr(ctx context.Context, c *Cluster, op, key string, fn func() error) error {
	_, err := retry(ctx, c, op, key, stats.MetricClusterRetries, func() (struct{}, error) {
		return struct{}{}, fn()
	})
	return err
}

// alive rejects operations on a closed cluster.
func (c *Cluster) alive(op, key string) error {
	if c.closed.Load() {
		return opError(op, key, errors.New("cluster is closed"))
	}
	return nil
}

// --- data operations (context-first, auto-retrying) ---

// Get reads a key from its shard's local replica under the requested
// consistency mode. With no options it is an eventual read — today's
// (and the historical) behavior: serve the local replica as-is, never
// blocking and never rejected by handoffs or snapshot barriers. The
// moded forms (WithSession, WithMaxStaleness, WithLinearizable,
// WithReadLease) may wait for the replica to catch up or order a fence
// on the key's ring; those waits honor ctx cancellation and deadlines
// throughout, and a shard shutting down mid-wait (an elastic shrink) is
// retried against the new routing table like any other retryable
// failure. Terminal failures surface as *Error{Op: "get"}.
func (c *Cluster) Get(ctx context.Context, key string, opts ...ReadOption) (val []byte, ok bool, err error) {
	if err := c.alive("get", key); err != nil {
		return nil, false, err
	}
	if len(opts) == 0 {
		// No per-call choice: the WithDefaultReadOptions mode, if any,
		// applies. An explicit option set always replaces the default.
		opts = c.defaultRead
	}
	if len(opts) == 0 {
		// Eventual fast path: purely local, nothing to wait on, so one
		// upfront ctx check suffices and the retry machinery stays out of
		// the way.
		if err := ctx.Err(); err != nil {
			return nil, false, opError("get", key, err)
		}
		v, ok := c.dds.GetLocal(key)
		return v, ok, nil
	}
	type getRes struct {
		v  []byte
		ok bool
	}
	r, err := retry(ctx, c, "get", key, stats.MetricClusterRetries, func() (getRes, error) {
		v, ok, err := c.dds.Get(ctx, key, opts...)
		return getRes{v, ok}, err
	})
	if err != nil {
		return nil, false, err
	}
	return r.v, r.ok, nil
}

// NewSession starts a read-your-writes session: writes made through it
// record their ordered position, and session reads — sess.Get, or
// Cluster.Get with WithSession(sess) on any node's Cluster — are
// guaranteed to observe them. Sessions are safe for concurrent use and
// cheap; use one per logical client.
func (c *Cluster) NewSession() *Session {
	return &Session{c: c, s: c.dds.NewSession()}
}

// Session is the facade's read-your-writes handle: Cluster semantics
// (context-first, auto-retrying, *Error taxonomy) over a dds session.
type Session struct {
	c *Cluster
	s *dds.Session
}

// Set writes key=val through the session, recording the write so later
// session reads observe it. Retries transient rejections like
// Cluster.Set.
func (s *Session) Set(ctx context.Context, key string, val []byte) error {
	if err := s.c.alive("set", key); err != nil {
		return err
	}
	return retryErr(ctx, s.c, "set", key, func() error { return s.s.Set(ctx, key, val) })
}

// Delete removes a key through the session, recording the deletion so
// later session reads observe it.
func (s *Session) Delete(ctx context.Context, key string) error {
	if err := s.c.alive("delete", key); err != nil {
		return err
	}
	return retryErr(ctx, s.c, "delete", key, func() error { return s.s.Delete(ctx, key) })
}

// Get reads a key at session (read-your-writes) consistency.
func (s *Session) Get(ctx context.Context, key string) ([]byte, bool, error) {
	return s.c.Get(ctx, key, dds.WithSession(s.s))
}

// Set writes key=val on the key's shard and returns once the write has
// applied locally (read-your-writes). A handoff or snapshot barrier over
// the key's slice is retried away internally.
func (c *Cluster) Set(ctx context.Context, key string, val []byte) error {
	if err := c.alive("set", key); err != nil {
		return err
	}
	return retryErr(ctx, c, "set", key, func() error { return c.dds.Set(ctx, key, val) })
}

// Delete removes a key on its shard, retrying transient rejections.
func (c *Cluster) Delete(ctx context.Context, key string) error {
	if err := c.alive("delete", key); err != nil {
		return err
	}
	return retryErr(ctx, c, "delete", key, func() error { return c.dds.Delete(ctx, key) })
}

// Lock acquires the named lock on its owning shard, blocking until
// granted or ctx is done, and retrying through handoff windows.
func (c *Cluster) Lock(ctx context.Context, name string) error {
	if err := c.alive("lock", name); err != nil {
		return err
	}
	return retryErr(ctx, c, "lock", name, func() error { return c.dds.Lock(ctx, name) })
}

// Unlock releases the named lock held by this node, retrying a release
// that races a keyspace handoff (the lock migrates with its owner
// intact) until it applies or ctx is done.
func (c *Cluster) Unlock(ctx context.Context, name string) error {
	if err := c.alive("unlock", name); err != nil {
		return err
	}
	return retryErr(ctx, c, "unlock", name, func() error { return c.dds.Unlock(ctx, name) })
}

// Holder reports the current owner of the named lock.
func (c *Cluster) Holder(name string) (NodeID, bool) { return c.dds.Holder(name) }

// Keys lists the union of all shards' keys, sorted.
func (c *Cluster) Keys() []string { return c.dds.Keys() }

// Watch registers a callback for key changes on every shard, including
// shards attached by later grows. See ShardedDDS.Watch for the ordering
// contract.
func (c *Cluster) Watch(fn func(key string, val []byte, deleted bool)) { c.dds.Watch(fn) }

// OnApply registers an observer of the ordered apply stream: fn runs
// once per applied operation that changed keys, on every shard
// (including later grows), after the replica's state advanced. A cache
// layer in front of the cluster (for example the gateway's read
// micro-cache) hooks this to evict entries the moment a write from ANY
// node applies locally, instead of waiting out a TTL. fn must not block:
// it runs on the shard's apply path.
func (c *Cluster) OnApply(fn func(ApplyEvent)) { c.dds.OnApply(fn) }

// --- transactions ---

// Tx is one multi-key cross-shard transaction under construction:
// declare the read and write sets, then Commit. Commit re-runs the
// transaction when it aborts retryably (an epoch flip, a handoff freeze,
// a snapshot barrier), so the caller only ever sees success, a permanent
// failure (ErrTxnIndeterminate), or its context expiring.
type Tx struct {
	c *Cluster
	t *txn.Txn
}

// Txn starts an empty transaction.
func (c *Cluster) Txn() *Tx { return &Tx{c: c, t: c.txn.Begin()} }

// Set stages a write of key=val.
func (t *Tx) Set(key string, val []byte) *Tx { t.t.Set(key, val); return t }

// Delete stages a deletion of key.
func (t *Tx) Delete(key string) *Tx { t.t.Delete(key); return t }

// Read adds key to the read set; Commit returns its value as of the
// transaction's serialization point.
func (t *Tx) Read(key string) *Tx { t.t.Read(key); return t }

// Commit runs the transaction — lock in global order, pin the epoch,
// prepare and commit via 2PC — re-running it on retryable aborts until
// it commits or ctx is done. The returned map holds the read-set values
// at the serialization point of the attempt that committed.
// ErrTxnIndeterminate is never retried: the commit may be partially
// applied and blind re-execution could double-apply it.
func (t *Tx) Commit(ctx context.Context) (map[string][]byte, error) {
	if err := t.c.alive("txn", ""); err != nil {
		return nil, err
	}
	return retry(ctx, t.c, "txn", "", stats.MetricClusterTxnRetries, func() (map[string][]byte, error) {
		return t.t.Commit(ctx)
	})
}

// --- cluster-wide operations ---

// Snapshot captures a consistent cut of the whole sharded keyspace (see
// ShardedDDS.Snapshot), retrying conflicts with in-flight reshards or
// concurrent snapshots.
func (c *Cluster) Snapshot(ctx context.Context) (map[string][]byte, error) {
	if err := c.alive("snapshot", ""); err != nil {
		return nil, err
	}
	return retry(ctx, c, "snapshot", "", stats.MetricClusterRetries, func() (map[string][]byte, error) {
		return c.dds.Snapshot(ctx)
	})
}

// Grow adds one ring to the runtime and migrates the keyspace slice the
// consistent-hash diff names onto it. Every node of the cluster must
// call Grow (the ring assembles via discovery; the lowest member
// coordinates the handoff). An aborted handoff — a transaction staged
// mid-freeze, a ring dying — is retried until ctx is done; a concurrent
// reshard on this node (ErrReshardInProgress) is a permanent error.
func (c *Cluster) Grow(ctx context.Context) (RingID, error) {
	if err := c.alive("grow", ""); err != nil {
		return 0, err
	}
	return retry(ctx, c, "grow", "", stats.MetricClusterRetries, func() (RingID, error) {
		return c.rt.AddRing(ctx)
	})
}

// Shrink removes the ring, handing its keyspace slice back to the
// survivors. Like Grow it must be called on every node and retries
// aborted handoffs.
func (c *Cluster) Shrink(ctx context.Context, ring RingID) error {
	if err := c.alive("shrink", ""); err != nil {
		return err
	}
	return retryErr(ctx, c, "shrink", "", func() error { return c.rt.RemoveRing(ctx, ring) })
}

// Multicast submits an application payload on the given ring with agreed
// ordering; it is delivered to the WithHandlers callbacks of every
// member.
func (c *Cluster) Multicast(ring RingID, payload []byte) error {
	if err := c.alive("multicast", ""); err != nil {
		return err
	}
	return opError("multicast", "", c.rt.Multicast(ring, payload))
}

// --- views and accessors ---

// Health returns the full runtime health view: per-ring membership and
// liveness, the routing epoch, and demux drop counters.
func (c *Cluster) Health() RuntimeHealth { return c.rt.HealthView() }

// Healthy reports whether every ring of this node is running.
func (c *Cluster) Healthy() bool { return c.rt.Healthy() }

// Joined reports whether this member has assembled with its configured
// peers: true once the combined membership holds more than this node
// (sticky — a later partition does not clear it), and trivially true for
// a member opened with no peers. A gateway fronting the cluster gates
// writes on it: a freshly booted member that seeded its own singleton
// group and has not yet merged would otherwise accept writes the
// lowest-ID-wins group merge silently discards.
func (c *Cluster) Joined() bool {
	if c.joined.Load() {
		return true
	}
	if !c.expectPeers || len(c.rt.Members()) > 1 {
		c.joined.Store(true)
		return true
	}
	return false
}

// Members returns the combined membership view (nodes present in every
// active ring).
func (c *Cluster) Members() []NodeID { return c.rt.Members() }

// Routing returns the current epoch-versioned routing table.
func (c *Cluster) Routing() RoutingView { return c.rt.Routing() }

// RoutingWatch registers a callback invoked after every routing-epoch
// publication.
func (c *Cluster) RoutingWatch(fn func(RoutingView)) { c.rt.RoutingWatch(fn) }

// Stats returns the cluster's metric registry.
func (c *Cluster) Stats() *StatsRegistry { return c.reg }

// Runtime exposes the underlying sharded runtime for advanced
// composition (per-ring nodes, spawn hooks). Most callers never need it.
func (c *Cluster) Runtime() *Runtime { return c.rt }

// DDS exposes the underlying sharded data service. Most callers should
// use the Cluster's own retrying operations instead.
func (c *Cluster) DDS() *ShardedDDS { return c.dds }

// AdminAddr reports the bound admin address ("" without WithAdmin).
func (c *Cluster) AdminAddr() string {
	if c.adminLn == nil {
		return ""
	}
	return c.adminLn.Addr().String()
}

// WaitMembers blocks until the combined membership view holds exactly n
// members, or ctx is done.
func (c *Cluster) WaitMembers(ctx context.Context, n int) error {
	for {
		if len(c.Members()) == n {
			return nil
		}
		select {
		case <-ctx.Done():
			return opError("wait-members", "", fmt.Errorf("membership %v after %w", c.Members(), ctx.Err()))
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// --- shutdown ---

// closeDrain bounds how long Close waits for staged transactions to
// resolve before tearing the runtime down.
const closeDrain = 2 * time.Second

// Leave departs the cluster gracefully: every ring announces an ordered
// leave (peers converge immediately instead of waiting for failure
// detection), the departure is awaited at most until ctx is done, and
// the cluster is closed.
func (c *Cluster) Leave(ctx context.Context) error {
	if c.closed.Load() {
		return c.Close()
	}
	nodes := c.rt.Nodes()
	for _, n := range nodes {
		n.Leave()
	}
	for {
		all := true
		for _, n := range nodes {
			if !n.Stopped() {
				all = false
				break
			}
		}
		if all || ctx.Err() != nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	return c.Close()
}

// Close shuts the cluster down in order: staged cross-shard transactions
// are drained (bounded), the admin surface stops accepting requests, and
// the runtime closes every ring and the shared transport. It is
// idempotent — a second Close returns the first one's result.
func (c *Cluster) Close() error {
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	if c.closed.Swap(true) {
		return c.closeErr
	}
	// Drain: a staged (prepared but unresolved) transaction on a local
	// replica means some coordinator is mid-2PC; give it a bounded window
	// to commit or abort so this node's departure doesn't force the
	// presumed-abort path.
	deadline := time.Now().Add(closeDrain)
	for c.dds.PendingTxns() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if c.admin != nil {
		_ = c.admin.Close()
	}
	err := c.rt.Close()
	if c.backend != nil {
		// The backend closes after the rings: the last ordered applies
		// (and the decide records they may carry) reach the log first.
		if berr := c.backend.Close(); err == nil {
			err = berr
		}
	}
	c.closeErr = opError("close", "", err)
	return c.closeErr
}

// --- admin HTTP surface ---

// adminMux builds the admin handler set raincored historically served,
// now owned by the facade so every deployment gets the same surface.
func (c *Cluster) adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(v)
	}
	mux.HandleFunc("GET /health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Health())
	})
	mux.HandleFunc("GET /routing", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Routing())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		snap, batch, pools := c.statsSnapshot()
		writeJSON(w, map[string]any{
			"counters":   snap.Counters,
			"gauges":     snap.Gauges,
			"histograms": snap.Histograms,
			// Process-global transport internals: frames-per-syscall
			// amortization from the mmsg batching and wire buffer pool
			// effectiveness.
			"udp_batch":   batch,
			"frame_pools": pools,
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		snap, _, _ := c.statsSnapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WriteText(w)
	})
	mux.HandleFunc("GET /snapshot", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
		defer cancel()
		snap, err := c.Snapshot(ctx)
		if err != nil {
			http.Error(w, err.Error(), adminStatus(err))
			return
		}
		writeJSON(w, map[string]any{"routing": c.Routing(), "keys": snap})
	})
	mux.HandleFunc("POST /rings/add", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 60*time.Second)
		defer cancel()
		ringID, err := c.Grow(ctx)
		if err != nil {
			http.Error(w, err.Error(), adminStatus(err))
			return
		}
		writeJSON(w, map[string]any{"ring": ringID, "routing": c.Routing()})
	})
	mux.HandleFunc("POST /rings/remove", func(w http.ResponseWriter, r *http.Request) {
		n, err := strconv.ParseUint(r.URL.Query().Get("ring"), 10, 32)
		if err != nil {
			http.Error(w, "want ?ring=N", http.StatusBadRequest)
			return
		}
		ringID := RingID(n)
		ctx, cancel := context.WithTimeout(r.Context(), 60*time.Second)
		defer cancel()
		if err := c.Shrink(ctx, ringID); err != nil {
			http.Error(w, err.Error(), adminStatus(err))
			return
		}
		writeJSON(w, map[string]any{"routing": c.Routing()})
	})
	return mux
}

// statsSnapshot is the single registry-snapshot code path behind both
// observability surfaces: GET /stats (JSON) and GET /metrics (Prometheus
// text) render from one call of this, so the two can never disagree
// about what one scrape observed.
func (c *Cluster) statsSnapshot() (stats.Snapshot, transport.BatchStatsSnapshot, wire.PoolStatsSnapshot) {
	return c.reg.Snapshot(), transport.BatchStats(), wire.PoolStats()
}

// adminStatus maps the error taxonomy onto HTTP: retryable conflicts are
// 409 (try again), everything else is a 500.
func adminStatus(err error) int {
	if IsRetryable(err) || errors.Is(err, ErrReshardInProgress) {
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}
