package raincore

// Façade-level tests: drive the public API end to end over real UDP
// loopback sockets and over the simulated network, the two transports a
// downstream user would pick between.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/transport"
)

// udpTrio builds a 3-node cluster over loopback UDP through the public API.
func udpTrio(t *testing.T) ([]*Node, func(NodeID) []string) {
	t.Helper()
	ids := []NodeID{1, 2, 3}
	var udps []*transport.UDPConn
	var addrs []Addr
	for range ids {
		c, err := ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		udps = append(udps, c)
		addrs = append(addrs, c.LocalAddr())
	}
	var mu sync.Mutex
	got := map[NodeID][]string{}
	var nodes []*Node
	for i, id := range ids {
		ring := FastRing()
		ring.Eligible = ids
		node, err := NewNode(Config{ID: id, Ring: ring}, []PacketConn{udps[i]})
		if err != nil {
			t.Fatal(err)
		}
		id := id
		node.SetHandlers(Handlers{OnDeliver: func(d Delivery) {
			mu.Lock()
			got[id] = append(got[id], string(d.Payload))
			mu.Unlock()
		}})
		nodes = append(nodes, node)
	}
	for i := range nodes {
		for j, id := range ids {
			if i != j {
				nodes[i].SetPeer(id, []Addr{addrs[j]})
			}
		}
	}
	for _, n := range nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	reader := func(id NodeID) []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), got[id]...)
	}
	return nodes, reader
}

func waitMembers(t *testing.T, n *Node, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(n.Members()) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("membership = %v, want %d members", n.Members(), want)
}

func TestPublicAPIOverUDP(t *testing.T) {
	nodes, got := udpTrio(t)
	for _, n := range nodes {
		waitMembers(t, n, 3, 15*time.Second)
	}
	for i, n := range nodes {
		if err := n.Multicast([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(got(1)) == 3 && len(got(2)) == 3 && len(got(3)) == 3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Agreed ordering across real sockets.
	ref := got(1)
	if len(ref) != 3 {
		t.Fatalf("node 1 delivered %v", ref)
	}
	for _, id := range []NodeID{2, 3} {
		g := got(id)
		for k := range ref {
			if g[k] != ref[k] {
				t.Fatalf("order differs on UDP: node %v %v vs node 1 %v", id, g, ref)
			}
		}
	}
}

func TestPublicAPIMasterLockOverUDP(t *testing.T) {
	nodes, _ := udpTrio(t)
	for _, n := range nodes {
		waitMembers(t, n, 3, 15*time.Second)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := nodes[0].Lock(ctx); err != nil {
		t.Fatal(err)
	}
	// While locked, another node's attempt must time out.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	if err := nodes[1].Lock(ctx2); err == nil {
		t.Fatal("two nodes held the master lock")
	}
	nodes[0].Unlock()
	ctx3, cancel3 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel3()
	if err := nodes[1].Lock(ctx3); err != nil {
		t.Fatalf("lock after release: %v", err)
	}
	nodes[1].Unlock()
}

func TestPublicAPIGracefulLeave(t *testing.T) {
	nodes, _ := udpTrio(t)
	for _, n := range nodes {
		waitMembers(t, n, 3, 15*time.Second)
	}
	nodes[2].Leave()
	waitMembers(t, nodes[0], 2, 10*time.Second)
	waitMembers(t, nodes[1], 2, 10*time.Second)
	if !nodes[2].Stopped() {
		t.Fatal("departed node not stopped")
	}
}

func TestOpenClientThroughFacade(t *testing.T) {
	net := simnet.New(simnet.Options{})
	defer net.Close()
	ids := []NodeID{1, 2}
	var nodes []*Node
	var mu sync.Mutex
	delivered := map[NodeID]int{}
	for _, id := range ids {
		ring := FastRing()
		ring.Eligible = ids
		conn := transport.NewSimConn(net.MustEndpoint(simnet.Addr(fmt.Sprintf("n%d", id))))
		node, err := NewNode(Config{ID: id, Ring: ring}, []PacketConn{conn})
		if err != nil {
			t.Fatal(err)
		}
		id := id
		node.SetHandlers(Handlers{OnDeliver: func(Delivery) {
			mu.Lock()
			delivered[id]++
			mu.Unlock()
		}})
		nodes = append(nodes, node)
	}
	nodes[0].SetPeer(2, []Addr{"n2"})
	nodes[1].SetPeer(1, []Addr{"n1"})
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	waitMembers(t, nodes[0], 2, 15*time.Second)

	cl, err := NewOpenClient(500, []PacketConn{transport.NewSimConn(net.MustEndpoint("client"))},
		nil, nil, TransportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetMember(1, []Addr{"n1"})
	if err := cl.Send(1, []byte("open group"), false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		both := delivered[1] >= 1 && delivered[2] >= 1
		mu.Unlock()
		if both {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("open-group message did not reach all members")
}

func TestRingPresets(t *testing.T) {
	fast, paper := FastRing(), PaperRing()
	if fast.TokenHold >= paper.TokenHold {
		t.Fatal("FastRing should circulate faster than PaperRing")
	}
	if paper.HungryTimeout != 500*time.Millisecond {
		t.Fatalf("PaperRing hungry timeout = %v, want the §3.2 regime", paper.HungryTimeout)
	}
}
