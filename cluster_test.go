package raincore

// Facade tests: drive the Cluster API end to end over the simulated
// network — the retry layer's behavior under elastic grows, prompt
// context cancellation, and the ordered-shutdown/no-leak contract of
// Close.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
)

// simClusters opens n Clusters over one simulated switch, rings shards
// each, with fast timers, and waits for the combined membership to
// converge. Cleanup closes every cluster and the network.
func simClusters(t *testing.T, n, rings int) (*simnet.Network, []*Cluster) {
	t.Helper()
	net := simnet.New(simnet.Options{})
	t.Cleanup(net.Close)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i + 1)
	}
	rc := FastRing()
	rc.HungryTimeout = 400 * time.Millisecond
	rc.StarvingRetry = 300 * time.Millisecond
	rc.BodyodorInterval = 50 * time.Millisecond
	rc.Eligible = ids
	tc := transport.DefaultConfig()
	tc.AckTimeout = 10 * time.Millisecond
	var clusters []*Cluster
	for _, id := range ids {
		conn := transport.NewSimConn(net.MustEndpoint(simnet.Addr(fmt.Sprintf("node-%d", id))))
		opts := []Option{
			WithID(id),
			WithRings(rings),
			WithRingConfig(rc),
			WithTransportConfig(tc),
		}
		for _, other := range ids {
			if other != id {
				opts = append(opts, WithPeer(other, Addr(fmt.Sprintf("node-%d", other))))
			}
		}
		cl, err := Open(context.Background(), []PacketConn{conn}, opts...)
		if err != nil {
			t.Fatalf("Open node %v: %v", id, err)
		}
		t.Cleanup(func() { cl.Close() })
		clusters = append(clusters, cl)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, cl := range clusters {
		if err := cl.WaitMembers(ctx, n); err != nil {
			t.Fatal(err)
		}
	}
	return net, clusters
}

// TestClusterDataOps exercises the context-first single-key surface and
// the error taxonomy on the happy path.
func TestClusterDataOps(t *testing.T) {
	_, cls := simClusters(t, 2, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := cls[0].Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cls[0].Get(ctx, "k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if err := cls[0].Lock(ctx, "l"); err != nil {
		t.Fatal(err)
	}
	if owner, held := cls[0].Holder("l"); !held || owner != 1 {
		t.Fatalf("Holder = %v, %v", owner, held)
	}
	if err := cls[0].Unlock(ctx, "l"); err != nil {
		t.Fatal(err)
	}
	if err := cls[0].Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	views, err := cls[0].Txn().Set("a", []byte("1")).Set("b", []byte("2")).Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 0 {
		t.Fatalf("write-only txn returned reads: %v", views)
	}
	// Converged on the other node.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok, _ := cls[1].Get(ctx, "a"); ok && string(v) == "1" {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("txn write never converged on peer")
}

// TestClusterSetRidesThroughGrow is the retry layer's core contract: a
// closed-loop writer keeps issuing Set while the cluster grows by one
// ring, and never observes an error — ErrResharding is internal control
// flow now.
func TestClusterSetRidesThroughGrow(t *testing.T) {
	_, cls := simClusters(t, 3, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	epoch0 := cls[0].Routing().Epoch
	stop := make(chan struct{})
	var sets atomic.Int64
	writeErr := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("grow-key-%d", i%256)
			if err := cls[0].Set(ctx, key, []byte("x")); err != nil {
				select {
				case writeErr <- err:
				default:
				}
				return
			}
			sets.Add(1)
		}
	}()
	// Let the writer reach steady state before moving the keyspace.
	for sets.Load() < 50 {
		time.Sleep(time.Millisecond)
	}

	growErrs := make(chan error, len(cls))
	for _, cl := range cls {
		cl := cl
		go func() {
			_, err := cl.Grow(ctx)
			growErrs <- err
		}()
	}
	for range cls {
		if err := <-growErrs; err != nil {
			t.Fatalf("Grow: %v", err)
		}
	}
	// Keep writing on the new epoch, then stop.
	post := sets.Load()
	for sets.Load() < post+50 && ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	close(stop)

	select {
	case err := <-writeErr:
		t.Fatalf("a Set surfaced an error across the grow: %v", err)
	default:
	}
	if got := cls[0].Routing().Epoch; got != epoch0+1 {
		t.Fatalf("routing epoch = %d, want %d", got, epoch0+1)
	}
	if retries := cls[0].Stats().Counter("cluster_op_retries").Load(); retries > 0 {
		t.Logf("retry layer absorbed %d rejections", retries)
	}
}

// TestClusterRetryHonorsCancel pins the other half of the retry
// contract: a retryable condition that never clears must not trap the
// caller — cancellation surfaces promptly. A one-sided Grow (the peers
// never spawn the ring, so the handoff cannot start) keeps the node in
// the resharding state, which deterministically aborts every epoch-pinned
// transaction with the retryable ErrEpochChanged.
func TestClusterRetryHonorsCancel(t *testing.T) {
	_, cls := simClusters(t, 3, 2)

	growCtx, stopGrow := context.WithCancel(context.Background())
	growDone := make(chan struct{})
	go func() {
		defer close(growDone)
		_, _ = cls[0].Grow(growCtx) // stuck: peers never call Grow
	}()
	// Wait until the node reports the reshard in flight.
	deadline := time.Now().Add(10 * time.Second)
	for !cls[0].Health().Resharding && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !cls[0].Health().Resharding {
		t.Fatal("one-sided Grow never entered the resharding state")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 700*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cls[0].Txn().Set("x", []byte("1")).Commit(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("commit succeeded during a wedged reshard")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want the context error to surface, got: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to surface; the retry loop must not spin past ctx", elapsed)
	}
	var e *Error
	if !errors.As(err, &e) || e.Op != "txn" {
		t.Fatalf("want *raincore.Error{Op: txn}, got %T: %v", err, err)
	}
	stopGrow()
	<-growDone
}

// TestErrorTaxonomy verifies the machine-checkable classification the
// acceptance contract names: every retryable sentinel matches
// ErrRetryable via errors.Is, the permanent ones do not, and wrapping
// through *Error preserves both.
func TestErrorTaxonomy(t *testing.T) {
	retryable := []error{ErrResharding, ErrSnapshotting, ErrEpochChanged, ErrReshardAborted, ErrTxnAborted}
	for _, err := range retryable {
		if !IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = false, want true", err)
		}
		wrapped := &Error{Op: "set", Key: "k", Err: fmt.Errorf("attempt 3: %w", err)}
		if !IsRetryable(wrapped) || !wrapped.Retryable() {
			t.Errorf("wrapped %v lost its retryable class", err)
		}
		if !errors.Is(wrapped, err) {
			t.Errorf("wrapped %v lost its identity", err)
		}
	}
	permanent := []error{ErrTxnIndeterminate, ErrReshardInProgress, context.Canceled, context.DeadlineExceeded, errors.New("boom")}
	for _, err := range permanent {
		if IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = true, want false", err)
		}
	}
}

// TestClusterCloseIsOrderedAndIdempotent: Close twice returns the same
// result, and operations after Close fail cleanly.
func TestClusterCloseIsOrderedAndIdempotent(t *testing.T) {
	_, cls := simClusters(t, 2, 1)
	cl := cls[0]
	if err := cl.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := cl.Set(context.Background(), "k", nil); err == nil {
		t.Fatal("Set on a closed cluster succeeded")
	}
}

// TestOpenCloseLeaksNoGoroutines: an Open→use→Close cycle returns the
// process to its starting goroutine count (manual check; the module has
// no goleak dependency).
func TestOpenCloseLeaksNoGoroutines(t *testing.T) {
	// Settle anything older tests left winding down.
	time.Sleep(100 * time.Millisecond)
	before := runtime.NumGoroutine()

	net := simnet.New(simnet.Options{})
	rc := FastRing()
	rc.Eligible = []NodeID{1}
	conn := transport.NewSimConn(net.MustEndpoint("solo"))
	cl, err := Open(context.Background(), []PacketConn{conn},
		WithID(1), WithRings(2), WithRingConfig(rc), WithAdmin("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := cl.WaitMembers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if cl.AdminAddr() == "" {
		t.Fatal("WithAdmin did not bind")
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	net.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before Open, %d after Close — leak", before, runtime.NumGoroutine())
}

// TestDefaultReadOptions: a cluster opened with WithDefaultReadOptions
// applies the configured mode to bare Gets (proved via the per-mode read
// counters), while an explicit per-call option still replaces it.
func TestDefaultReadOptions(t *testing.T) {
	net := simnet.New(simnet.Options{})
	t.Cleanup(net.Close)
	rc := FastRing()
	rc.Eligible = []NodeID{1}
	conn := transport.NewSimConn(net.MustEndpoint(simnet.Addr("node-1")))
	cl, err := Open(context.Background(), []PacketConn{conn},
		WithID(1), WithRings(2), WithRingConfig(rc),
		WithDefaultReadOptions(WithMaxStaleness(time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := cl.WaitMembers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get(ctx, "k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("default-mode Get = %q, %v, %v", v, ok, err)
	}
	if n := cl.Stats().Counter(stats.MetricReadsBounded).Load(); n != 1 {
		t.Fatalf("bare Get did not use the default bounded mode: reads_bounded = %d", n)
	}
	// Explicit eventual replaces the default.
	if _, ok, err := cl.Get(ctx, "k", WithEventual()); err != nil || !ok {
		t.Fatalf("explicit eventual Get failed: %v %v", ok, err)
	}
	if n := cl.Stats().Counter(stats.MetricReadsBounded).Load(); n != 1 {
		t.Fatalf("explicit option did not replace the default: reads_bounded = %d", n)
	}
}

// TestAdminMetricsMatchesStats: GET /metrics serves valid Prometheus
// text exposition and both observability surfaces render through the
// same snapshot path.
func TestAdminMetricsMatchesStats(t *testing.T) {
	net := simnet.New(simnet.Options{})
	t.Cleanup(net.Close)
	rc := FastRing()
	rc.Eligible = []NodeID{1}
	conn := transport.NewSimConn(net.MustEndpoint(simnet.Addr("node-1")))
	cl, err := Open(context.Background(), []PacketConn{conn},
		WithID(1), WithRings(1), WithRingConfig(rc), WithAdmin("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := cl.WaitMembers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + cl.AdminAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := stats.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{"# TYPE msgs_delivered counter", "multicast_latency_seconds_bucket"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}
