package raincore_test

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (§4), plus the ablations from DESIGN.md and a few
// micro-benchmarks of the core primitives. Each experiment benchmark runs
// the same code as `rainbench` and reports its headline numbers through
// b.ReportMetric, so `go test -bench=.` regenerates the whole evaluation.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/rainwall"
	"repro/internal/stats"
)

// BenchmarkE1TaskSwitching regenerates the §4.1 task-switching comparison:
// Raincore must stay at token-rate scale while the broadcast baselines
// grow with M*N.
func BenchmarkE1TaskSwitching(b *testing.B) {
	cfg := experiments.E1Config{Ns: []int{4}, M: 100, L: 50, Duration: time.Second}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E1TaskSwitching(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.SwitchesPS, r.Protocol+"_switches/s/node")
		}
	}
}

// BenchmarkE2NetworkOverhead regenerates the §4.1 packet/byte analysis.
func BenchmarkE2NetworkOverhead(b *testing.B) {
	cfg := experiments.E2Config{Ns: []int{4}, MsgBytes: 256}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E2NetworkOverhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Packets), r.Protocol+"_packets")
			b.ReportMetric(float64(r.Bytes), r.Protocol+"_bytes")
		}
	}
}

// BenchmarkE3RainwallScaling regenerates Figure 3: throughput at 1, 2 and
// 4 gateways.
func BenchmarkE3RainwallScaling(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		n := n
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			cfg := experiments.DefaultE3()
			cfg.Sizes = []int{n}
			cfg.Ticks = 80
			for i := 0; i < b.N; i++ {
				rows, err := experiments.E3RainwallScaling(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].ThroughputMbps, "Mbit/s")
				b.ReportMetric(rows[0].RaincoreCPUPct, "raincore_cpu_%")
			}
		})
	}
}

// BenchmarkE4Failover regenerates the §3.2 fail-over measurement with
// paper-regime timers.
func BenchmarkE4Failover(b *testing.B) {
	cfg := experiments.DefaultE4()
	cfg.Sizes = []int{2}
	cfg.Ticks = 300
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E4Failover(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].GapSecs, "failover_s")
	}
}

// BenchmarkE5ShardScaling regenerates the sharded multi-ring scaling run:
// aggregate ordered-multicast throughput and sharded-dds op rate at S in
// {1, 2, 4} rings over one shared transport. The 4-shard aggregate must
// clear 2.5x the 1-shard figure; the rows are persisted to BENCH_E5.json
// as the baseline later scaling PRs diff against.
func BenchmarkE5ShardScaling(b *testing.B) {
	cfg := experiments.DefaultE5()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E5ShardScaling(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MulticastPS, fmt.Sprintf("mcast_msgs_s_S%d", r.Shards))
			b.ReportMetric(r.MulticastX, fmt.Sprintf("mcast_speedup_S%d", r.Shards))
			b.ReportMetric(r.DDSOpsPS, fmt.Sprintf("dds_ops_s_S%d", r.Shards))
		}
		last := rows[len(rows)-1]
		if last.Shards == 4 && last.MulticastX < 2.5 {
			b.Fatalf("4-shard multicast speedup %.2fx, want >= 2.5x", last.MulticastX)
		}
		if err := experiments.WriteE5JSON("BENCH_E5.json", cfg, rows, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1SafeVsAgreed regenerates the ordering-level latency ablation.
func BenchmarkA1SafeVsAgreed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.A1SafeVsAgreed(4, 30)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MeanMs, r.Ordering+"_mean_ms")
		}
	}
}

// BenchmarkA2SendStrategy regenerates the multi-address strategy ablation.
func BenchmarkA2SendStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.A2SendStrategy(50)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MeanMs, r.Strategy+"_mean_ms")
		}
	}
}

// BenchmarkA3TokenInterval regenerates the token-rate trade-off sweep.
func BenchmarkA3TokenInterval(b *testing.B) {
	holds := []time.Duration{5 * time.Millisecond, 50 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.A3TokenInterval(holds)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.DetectMs, fmt.Sprintf("detect_ms@%v", r.TokenHold))
			b.ReportMetric(r.SwitchesPS, fmt.Sprintf("switches@%v", r.TokenHold))
		}
	}
}

// --- micro-benchmarks of the core primitives ---

// BenchmarkMulticastThroughput measures sustained agreed-ordered multicast
// delivery on a 4-node cluster.
func BenchmarkMulticastThroughput(b *testing.B) {
	var delivered atomic.Int64
	tc, err := core.NewTestCluster(core.ClusterOptions{
		N: 4,
		Handlers: func(id core.NodeID) core.Handlers {
			return core.Handlers{OnDeliver: func(core.Delivery) {
				if id == 1 {
					delivered.Add(1)
				}
			}}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tc.Close()
	if err := tc.WaitAssembled(15 * time.Second); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tc.Nodes[1].Multicast(payload); err != nil {
			b.Fatal(err)
		}
	}
	// Wait for everything to circulate before stopping the clock so the
	// reported ns/op reflects delivery, not just submission.
	for delivered.Load() < int64(b.N) {
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
}

// BenchmarkMulticastLatency measures one submit-to-self-delivery cycle.
func BenchmarkMulticastLatency(b *testing.B) {
	var mu sync.Mutex
	waiters := map[int64]chan struct{}{}
	var next atomic.Int64
	tc, err := core.NewTestCluster(core.ClusterOptions{
		N: 4,
		Handlers: func(id core.NodeID) core.Handlers {
			return core.Handlers{OnDeliver: func(d core.Delivery) {
				if id != 1 || d.Origin != 1 {
					return
				}
				mu.Lock()
				k := next.Add(1) - 1
				if ch, ok := waiters[k]; ok {
					close(ch)
					delete(waiters, k)
				}
				mu.Unlock()
			}}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tc.Close()
	if err := tc.WaitAssembled(15 * time.Second); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := make(chan struct{})
		mu.Lock()
		waiters[int64(i)] = ch
		mu.Unlock()
		if err := tc.Nodes[1].Multicast(payload); err != nil {
			b.Fatal(err)
		}
		<-ch
	}
}

// BenchmarkTokenRoundTrip reports the steady-state token circulation rate
// on an idle 8-node cluster.
func BenchmarkTokenRoundTrip(b *testing.B) {
	tc, err := core.NewTestCluster(core.ClusterOptions{N: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer tc.Close()
	if err := tc.WaitAssembled(15 * time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := tc.Nodes[1].Stats().Counter(stats.MetricTokenPasses).Load()
		time.Sleep(100 * time.Millisecond)
		after := tc.Nodes[1].Stats().Counter(stats.MetricTokenPasses).Load()
		b.ReportMetric(float64(after-before)*10, "passes/s")
	}
}

// BenchmarkRainwallDataPath measures the per-tick cost of pushing 400
// flows through a 4-gateway cluster (the simulation's inner loop).
func BenchmarkRainwallDataPath(b *testing.B) {
	c, err := rainwall.NewCluster(rainwall.ClusterConfig{N: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitReady(20 * time.Second); err != nil {
		b.Fatal(err)
	}
	w := rainwall.NewWorkload(rainwall.WorkloadConfig{
		Seed: 77, Flows: 400, TotalBps: 600e6, VIPs: len(c.Pool), WebTraffic: true,
	})
	b.ReportAllocs()
	b.ResetTimer()
	c.Run(w, rainwall.RunOptions{Ticks: b.N, TickLen: 10 * time.Millisecond})
}
