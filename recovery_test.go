package raincore

// Durability-subsystem tests: crash a member, restart it from its WAL,
// and assert it rejoins via the delta fast-forward path with the same
// keyspace as the survivors — plus the replicated-commit-record
// guarantees (a coordinator death mid-2PC resolves deterministically,
// never indeterminately) and the gateway's apply-stream cache eviction.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
)

// openSimMember opens one facade member over the simulated switch. A
// nil backend disables durability. The ring template keeps SeqBase 0 so
// a restarted incarnation seeds a fresh (higher) sequence range from the
// wall clock, exactly like a production restart.
func openSimMember(t *testing.T, net *simnet.Network, ids []NodeID, id NodeID, rings int, backend StorageBackend) *Cluster {
	t.Helper()
	ep, err := net.Endpoint(simnet.Addr(fmt.Sprintf("wal-n%d", id)))
	if err != nil {
		t.Fatal(err)
	}
	tc := transport.DefaultConfig()
	tc.AckTimeout = 10 * time.Millisecond
	rc := FastRing()
	rc.Eligible = ids
	opts := []Option{
		WithID(id),
		WithRings(rings),
		WithRingConfig(rc),
		WithTransportConfig(tc),
	}
	if backend != nil {
		opts = append(opts, WithStorageBackend(backend))
	}
	for _, other := range ids {
		if other != id {
			opts = append(opts, WithPeer(other, Addr(fmt.Sprintf("wal-n%d", other))))
		}
	}
	cl, err := Open(context.Background(), []PacketConn{transport.NewSimConn(ep)}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// waitValue polls an eventual read until the key holds want.
func waitValue(t *testing.T, cl *Cluster, key, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var v []byte
	var ok bool
	for time.Now().Before(deadline) {
		v, ok, _ = cl.Get(context.Background(), key)
		if ok && string(v) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("key %q = %q (ok=%v), want %q", key, v, ok, want)
}

// TestClusterRestartFromWALSingleNode is the pure-replay path: with no
// peers to transfer state from, a restarted node must rebuild its entire
// keyspace from its own snapshot + log tail.
func TestClusterRestartFromWALSingleNode(t *testing.T) {
	net := simnet.New(simnet.Options{})
	defer net.Close()
	backend := NewMemoryStorage()
	ids := []NodeID{1}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cl := openSimMember(t, net, ids, 1, 2, backend)
	if err := cl.WaitMembers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := cl.Set(ctx, fmt.Sprintf("k-%d", i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent: a second call returns the first result.
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	cl2 := openSimMember(t, net, ids, 1, 2, backend)
	defer cl2.Close()
	// The keyspace is back before any peer traffic: local replay only.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k-%d", i)
		v, ok, err := cl2.Get(ctx, key)
		if err != nil || !ok || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("after restart %q = %q (ok=%v, err=%v)", key, v, ok, err)
		}
	}
	if replayed := cl2.Stats().Counter(stats.MetricRecoveryReplayed).Load(); replayed < n {
		t.Fatalf("recovery_replayed_records = %d, want >= %d", replayed, n)
	}
	// The ring reassembles and the restarted node accepts writes again.
	if err := cl2.WaitMembers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Set(ctx, "post-restart", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRestartRecoversViaDelta is the full property test: a loaded
// member is crashed (silenced mid-flight, including two staged 2PC
// transactions — one with its commit record ordered, one without), the
// survivors resolve both deterministically from the decide ring, and the
// restarted node replays its WAL and fast-forwards through a delta state
// transfer — not a full keyspace retransfer — back to keyspace
// equivalence. Concurrent transactions never observe an indeterminate
// outcome, Close is idempotent, and the test leaks no goroutines.
func TestCrashRestartRecoversViaDelta(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	net := simnet.New(simnet.Options{})
	defer net.Close()
	ids := []NodeID{1, 2, 3}
	backends := map[NodeID]StorageBackend{}
	for _, id := range ids {
		backends[id] = NewMemoryStorage()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cls := map[NodeID]*Cluster{}
	for _, id := range ids {
		cls[id] = openSimMember(t, net, ids, id, 2, backends[id])
	}
	defer func() {
		for _, cl := range cls {
			_ = cl.Close()
		}
	}()
	for _, id := range ids {
		if err := cls[id].WaitMembers(ctx, 3); err != nil {
			t.Fatal(err)
		}
	}

	// Seed load; every write lands in node 3's replica (and so its WAL).
	const seeded = 60
	for i := 0; i < seeded; i++ {
		if err := cls[1].Set(ctx, fmt.Sprintf("seed-%d", i), []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []string{"mid-abort", "mid-commit"} {
		if err := cls[1].Set(ctx, k, []byte("before")); err != nil {
			t.Fatal(err)
		}
	}
	waitValue(t, cls[3], fmt.Sprintf("seed-%d", seeded-1), "s", 10*time.Second)
	waitValue(t, cls[3], "mid-commit", "before", 10*time.Second)

	// Node 3 stops mid-2PC: transaction A staged with no commit record
	// (must abort), transaction B staged WITH its commit record ordered
	// but phase 2 never started (must commit — the record is the
	// decision).
	d3 := cls[3].DDS()
	epoch := d3.Epoch()
	decide := d3.DecideRing()
	idA, idB := d3.NewTxnID(), d3.NewTxnID()
	if err := d3.TxnPrepare(ctx, d3.ShardFor("mid-abort"), idA, epoch, decide,
		map[string][]byte{"mid-abort": []byte("torn")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d3.TxnPrepare(ctx, d3.ShardFor("mid-commit"), idB, epoch, decide,
		map[string][]byte{"mid-commit": []byte("after")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d3.TxnDecide(ctx, decide, idB); err != nil {
		t.Fatal(err)
	}
	// TxnPrepare/TxnDecide return at the coordinator's local apply; wait
	// until both survivors hold the two stages and the decide record
	// before crashing — the scenario under test is a coordinator that
	// dies after its commit record is ordered (replicated), not one whose
	// record never left the machine.
	stagedBy := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, id := range []NodeID{1, 2} {
			if cls[id].DDS().PendingTxns() != 2 ||
				cls[id].Stats().Counter(stats.MetricTxnDecides).Load() == 0 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(stagedBy) {
			t.Fatalf("staged 2PC state never replicated: n1 pending=%d n2 pending=%d",
				cls[1].DDS().PendingTxns(), cls[2].DDS().PendingTxns())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Survivor transaction load racing the crash: outcomes must be
	// success or a clean retryable abort — never indeterminate.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var commits, indeterminate atomic.Int64
	for _, id := range []NodeID{1, 2} {
		cl := cls[id]
		nid := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := []byte(fmt.Sprintf("w%v-%d", nid, i))
				lctx, lcancel := context.WithTimeout(context.Background(), 15*time.Second)
				_, err := cl.Txn().Set("load-x", v).Set("load-y", v).Commit(lctx)
				lcancel()
				switch {
				case err == nil:
					commits.Add(1)
				case errors.Is(err, ErrTxnIndeterminate):
					indeterminate.Add(1)
				}
			}
		}()
	}

	// Crash: silence the address (no leave, no goodbye), then reap the
	// dead process's runtime. The WAL backend survives, like a disk.
	net.SetNodeDown("wal-n3", true)
	_ = cls[3].Runtime().Close()

	// The survivors detect the death and resolve both orphans from the
	// decide ring: B commits (record present), A aborts (record absent
	// at the coordinator's ordered removal).
	for _, id := range []NodeID{1, 2} {
		waitValue(t, cls[id], "mid-commit", "after", 20*time.Second)
		v, ok, _ := cls[id].Get(ctx, "mid-abort")
		if !ok || string(v) != "before" {
			t.Fatalf("node %v: mid-abort = %q (ok=%v), want \"before\"", id, v, ok)
		}
	}
	drained := time.Now().Add(10 * time.Second)
	for (cls[1].DDS().PendingTxns() > 0 || cls[2].DDS().PendingTxns() > 0) && time.Now().Before(drained) {
		time.Sleep(2 * time.Millisecond)
	}
	if n1, n2 := cls[1].DDS().PendingTxns(), cls[2].DDS().PendingTxns(); n1 > 0 || n2 > 0 {
		t.Fatalf("staged transactions leaked past the crash: node1=%d node2=%d", n1, n2)
	}

	// Load written while the node is down — the recovery gap.
	const down = 40
	for i := 0; i < down; i++ {
		if err := cls[1].Set(ctx, fmt.Sprintf("down-%d", i), []byte("d")); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if commits.Load() == 0 {
		t.Fatal("no survivor transaction committed around the crash")
	}
	if n := indeterminate.Load(); n != 0 {
		t.Fatalf("%d transactions reported ErrTxnIndeterminate with commit records enabled", n)
	}

	// Restart from the WAL: replay locally, rejoin, delta fast-forward.
	net.SetNodeDown("wal-n3", false)
	cls[3] = openSimMember(t, net, ids, 3, 2, backends[3])
	if replayed := cls[3].Stats().Counter(stats.MetricRecoveryReplayed).Load(); replayed == 0 {
		t.Fatal("restarted node replayed no WAL records")
	}
	for _, id := range ids {
		if err := cls[id].WaitMembers(ctx, 3); err != nil {
			t.Fatal(err)
		}
	}
	waitValue(t, cls[3], fmt.Sprintf("down-%d", down-1), "d", 20*time.Second)
	waitValue(t, cls[3], "mid-commit", "after", 20*time.Second)
	if v, ok, _ := cls[3].Get(ctx, "mid-abort"); !ok || string(v) != "before" {
		t.Fatalf("restarted node: mid-abort = %q (ok=%v), want \"before\"", v, ok)
	}

	// The rejoin was served as a delta fast-forward, not a full keyspace
	// retransfer. The responder side counts the mode.
	deltas := cls[1].Stats().Counter(stats.MetricRecoveryDeltas).Load() +
		cls[2].Stats().Counter(stats.MetricRecoveryDeltas).Load()
	fulls := cls[1].Stats().Counter(stats.MetricRecoveryFulls).Load() +
		cls[2].Stats().Counter(stats.MetricRecoveryFulls).Load()
	if deltas == 0 {
		t.Fatalf("no delta fast-forward served (deltas=%d fulls=%d)", deltas, fulls)
	}
	if fulls != 0 {
		t.Fatalf("restart fell back to a full retransfer (deltas=%d fulls=%d)", deltas, fulls)
	}

	// Keyspace equivalence: same key set, same values, on all three.
	equivDeadline := time.Now().Add(20 * time.Second)
	for {
		equal := true
		mismatch := ""
		ref := cls[1].Keys()
		for _, id := range []NodeID{2, 3} {
			got := cls[id].Keys()
			if len(got) != len(ref) {
				equal = false
				mismatch = fmt.Sprintf("node %v holds %d keys, node 1 holds %d", id, len(got), len(ref))
				break
			}
		}
		if equal {
		keys:
			for _, k := range ref {
				want, _, _ := cls[1].Get(ctx, k)
				for _, id := range []NodeID{2, 3} {
					v, ok, _ := cls[id].Get(ctx, k)
					if !ok || string(v) != string(want) {
						equal = false
						mismatch = fmt.Sprintf("key %q: node 1 = %q, node %v = %q (ok=%v)", k, want, id, v, ok)
						break keys
					}
				}
			}
		}
		if equal {
			break
		}
		if time.Now().After(equivDeadline) {
			t.Fatalf("keyspaces diverged: %s", mismatch)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Tear down; double-Close on the restarted member must be a no-op.
	for _, id := range ids {
		if err := cls[id].Close(); err != nil {
			t.Fatalf("close node %v: %v", id, err)
		}
	}
	if err := cls[3].Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	net.Close()

	// Goroutine hygiene: everything the clusters started must wind down.
	leakDeadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+10 && time.Now().Before(leakDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines+10 {
		t.Fatalf("goroutine leak: %d now vs %d at start", n, baseGoroutines)
	}
}

// TestGatewayCacheInvalidationAcrossNodes wires the gateway's micro-cache
// to the cluster's ordered-apply stream: a write through node 1 must
// evict node 2's gateway cache entry when it applies — long before the
// (deliberately huge) TTL would expire it.
func TestGatewayCacheInvalidationAcrossNodes(t *testing.T) {
	net := simnet.New(simnet.Options{})
	defer net.Close()
	ids := []NodeID{1, 2}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cls := map[NodeID]*Cluster{}
	for _, id := range ids {
		cls[id] = openSimMember(t, net, ids, id, 2, nil)
		defer cls[id].Close()
	}
	for _, id := range ids {
		if err := cls[id].WaitMembers(ctx, 2); err != nil {
			t.Fatal(err)
		}
	}

	// TTL far beyond the test horizon: only apply-stream eviction can
	// make a cross-node write visible through this gateway in time.
	gw, err := gateway.New(gateway.Options{
		Backend:  cls[2],
		Registry: cls[2].Stats(),
		CacheTTL: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	cls[2].OnApply(func(e ApplyEvent) {
		for _, k := range e.Keys {
			gw.Invalidate(k)
		}
	})
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	get := func() (string, bool) {
		resp, err := http.Get(srv.URL + "/kv/hot")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", false
		}
		var body struct {
			Value  []byte `json:"value"`
			Cached bool   `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return string(body.Value), body.Cached
	}

	if err := cls[1].Set(ctx, "hot", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Wait for v1 through the gateway, then read again so the entry is
	// definitely cached.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, _ := get(); v == "v1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gateway never served v1")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if v, cached := get(); v != "v1" || !cached {
		t.Fatalf("second read = %q cached=%v, want cached v1", v, cached)
	}

	// The cross-node write: node 1 commits v2; node 2's replica applies
	// it, the hook evicts, and the very next gateway read is fresh.
	if err := cls[1].Set(ctx, "hot", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if v, _ := get(); v == "v2" {
			return
		}
		if time.Now().After(deadline) {
			v, cached := get()
			t.Fatalf("gateway still serves %q (cached=%v) after cross-node write", v, cached)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
