// Package raincore is the public face of this reproduction of "The
// Raincore Distributed Session Service for Networking Elements" (Fan &
// Bruck, IPPS 2001). It re-exports the session service (group membership,
// atomic reliable multicast with agreed and safe ordering, token-based
// mutual exclusion), the transport service, and the application layers the
// paper builds on top: the distributed data service, the Virtual IP
// manager, and the Rainwall firewall cluster.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	node, _ := raincore.NewNode(raincore.Config{ID: 1, Ring: raincore.FastRing()}, conns)
//	node.SetHandlers(raincore.Handlers{OnDeliver: func(d raincore.Delivery) { ... }})
//	node.Start()
//	node.Multicast([]byte("state update"))
package raincore

import (
	"repro/internal/core"
	"repro/internal/dds"
	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// Core session-service types.
type (
	// NodeID identifies a cluster member.
	NodeID = core.NodeID
	// Node is one member of a Raincore cluster.
	Node = core.Node
	// Config assembles a node.
	Config = core.Config
	// Handlers are the ordered application callbacks.
	Handlers = core.Handlers
	// Delivery is one multicast message in agreed total order.
	Delivery = core.Delivery
	// MembershipEvent reports a membership view change.
	MembershipEvent = core.MembershipEvent
	// SysEvent is an ordered system announcement (join/removal/merge).
	SysEvent = core.SysEvent
	// OpenClient sends open-group messages from outside the cluster.
	OpenClient = core.OpenClient
	// RingConfig tunes the token-ring protocol timers.
	RingConfig = ring.Config
	// TransportConfig tunes the reliable unicast layer.
	TransportConfig = transport.Config
	// PacketConn is the unreliable datagram interface the transport
	// service runs over (§2.1).
	PacketConn = transport.PacketConn
	// Addr is a transport-level peer address.
	Addr = transport.Addr
)

// Sharded multi-ring runtime types: S rings over one shared transport,
// with the data-service keyspace consistent-hashed across them.
type (
	// RingID identifies one ring of a sharded runtime.
	RingID = wire.RingID
	// Runtime owns a shared transport and one protocol node per ring.
	Runtime = core.Runtime
	// RuntimeConfig assembles a sharded runtime.
	RuntimeConfig = core.RuntimeConfig
	// RingHealth is one ring's slice of the combined health view.
	RingHealth = core.RingHealth
	// RuntimeHealth is the full health view: ring health, the routing
	// epoch, and unknown-ring frame drops (mis-epoch'd peers).
	RuntimeHealth = core.RuntimeHealth
	// RoutingView is a snapshot of the epoch-versioned routing table a
	// Runtime owns; AddRing/RemoveRing advance its epoch.
	RoutingView = core.RoutingView
	// ShardedDDS routes the distributed data service across the rings
	// of a Runtime by consistent key hashing, following the routing
	// table across elastic grows and shrinks.
	ShardedDDS = dds.Sharded
)

// Cross-shard transaction types: epoch-pinned two-phase commit over the
// per-ring master locks.
type (
	// TxnCoordinator runs multi-key cross-shard transactions against a
	// ShardedDDS.
	TxnCoordinator = txn.Coordinator
	// Txn is one transaction under construction: declare the read and
	// write sets with Read/Set/Delete, then Commit.
	Txn = txn.Txn
	// EpochPin freezes a caller's view of the routing epoch across a
	// multi-step operation; Check reports ErrEpochChanged once it moves.
	EpochPin = core.EpochPin
)

// Elastic-resharding errors.
var (
	// ErrResharding marks a write rejected because its keyspace slice is
	// mid-handoff; retry after the routing epoch advances.
	ErrResharding = dds.ErrResharding
	// ErrReshardAborted reports a handoff that rolled back to the old
	// routing epoch.
	ErrReshardAborted = core.ErrReshardAborted
	// ErrReshardInProgress rejects overlapping grow/shrink requests.
	ErrReshardInProgress = core.ErrReshardInProgress
	// ErrSnapshotting marks a write rejected because a cross-shard
	// consistent snapshot holds its barrier; retry after it lifts.
	ErrSnapshotting = dds.ErrSnapshotting
	// ErrEpochChanged reports a pinned routing epoch that advanced (or a
	// handoff in flight toward the next one); re-pin and retry.
	ErrEpochChanged = core.ErrEpochChanged
	// ErrTxnAborted reports a transaction that changed nothing anywhere;
	// the wrapped cause is retryable — re-run the transaction.
	ErrTxnAborted = txn.ErrAborted
	// ErrTxnIndeterminate reports a phase-2 failure after at least one
	// participant ring committed; see the txn package for the contract.
	ErrTxnIndeterminate = txn.ErrIndeterminate
)

// NoNode is the zero NodeID.
const NoNode = wire.NoNode

// Ring0 is the default ring of a single-ring deployment and the anchor
// ring of a sharded runtime.
const Ring0 = wire.Ring0

// NewRuntime builds a sharded multi-ring runtime over the given conns.
func NewRuntime(cfg RuntimeConfig, conns []PacketConn) (*Runtime, error) {
	return core.NewRuntime(cfg, conns)
}

// AttachShardedDDS builds one data-service replica per ring of the
// runtime and routes keys and locks across them. Call before
// Runtime.Start.
func AttachShardedDDS(rt *Runtime) (*ShardedDDS, error) {
	return dds.AttachSharded(rt)
}

// NewTxnCoordinator builds a cross-shard transaction coordinator over the
// sharded data service, pinning each transaction to the runtime's routing
// epoch (any elastic grow/shrink in flight aborts it retryably).
func NewTxnCoordinator(s *ShardedDDS, rt *Runtime) *TxnCoordinator {
	return txn.New(s, txn.WithRuntimePin(rt))
}

// NewNode builds a cluster member over the given transport conns.
func NewNode(cfg Config, conns []PacketConn) (*Node, error) {
	return core.NewNode(cfg, conns)
}

// NewOpenClient builds an open-group client (§2.6).
var NewOpenClient = core.NewOpenClient

// ListenUDP opens a real UDP conn, the production transport of §2.1.
var ListenUDP = transport.ListenUDP

// FastRing returns tight simulation timers (milliseconds).
var FastRing = core.FastRing

// PaperRing returns timers matching the paper's deployment regime
// (sub-two-second fail-over, §3.2).
var PaperRing = core.PaperRing
