// Package raincore is the public face of this reproduction of "The
// Raincore Distributed Session Service for Networking Elements" (Fan &
// Bruck, IPPS 2001), grown into a sharded, elastic, transactional
// session service. Applications program against one handle — the
// Cluster — which Open assembles in a single call: the sharded
// multi-ring runtime (group membership, atomic reliable multicast,
// token-based mutual exclusion, S rings over one shared transport), the
// distributed data service consistent-hashed across the rings, the
// cross-shard transaction coordinator, and optionally an admin HTTP
// surface.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	cl, _ := raincore.Open(ctx, conns,
//	        raincore.WithID(1),
//	        raincore.WithRings(4),
//	        raincore.WithPeer(2, "10.0.0.2:7001"),
//	        raincore.WithPeer(3, "10.0.0.3:7001"))
//	defer cl.Close()
//	cl.WaitMembers(ctx, 3)
//	cl.Set(ctx, "config/router-7", payload)
//	views, _ := cl.Txn().Read("a").Set("b", v).Commit(ctx)
//	cl.Grow(ctx) // +1 ring, keyspace rebalanced via ordered handoff
//
// Every Cluster method takes a context first and transparently retries
// the transient failures the layers below produce (a write racing an
// elastic reshard, a transaction aborted by an epoch flip), following
// the routing epoch instead of polling. Failures that do surface are
// *Error values with a machine-checkable Retryable classification; see
// IsRetryable and ErrRetryable.
//
// The pre-facade composition shims deprecated by the facade release are
// now removed; Open plus its options are the only way to assemble a
// cluster member. See the MIGRATION section of the README.
package raincore

import (
	"repro/internal/core"
	"repro/internal/dds"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Core session-service types.
type (
	// NodeID identifies a cluster member.
	NodeID = core.NodeID
	// Node is one member of a Raincore cluster.
	Node = core.Node
	// Config assembles a node.
	Config = core.Config
	// Handlers are the ordered application callbacks.
	Handlers = core.Handlers
	// Delivery is one multicast message in agreed total order.
	Delivery = core.Delivery
	// MembershipEvent reports a membership view change.
	MembershipEvent = core.MembershipEvent
	// SysEvent is an ordered system announcement (join/removal/merge).
	SysEvent = core.SysEvent
	// OpenClient sends open-group messages from outside the cluster.
	OpenClient = core.OpenClient
	// RingConfig tunes the token-ring protocol timers.
	RingConfig = ring.Config
	// TransportConfig tunes the reliable unicast layer.
	TransportConfig = transport.Config
	// PacketConn is the unreliable datagram interface the transport
	// service runs over (§2.1).
	PacketConn = transport.PacketConn
	// Addr is a transport-level peer address.
	Addr = transport.Addr
	// StatsRegistry aggregates the runtime's counters and histograms.
	StatsRegistry = stats.Registry
	// TraceLog records protocol events for diagnostics.
	TraceLog = trace.Log
)

// Sharded multi-ring runtime types: S rings over one shared transport,
// with the data-service keyspace consistent-hashed across them. The
// Cluster facade owns one of each; the types remain exported for
// advanced composition and diagnostics.
type (
	// RingID identifies one ring of a sharded runtime.
	RingID = wire.RingID
	// Runtime owns a shared transport and one protocol node per ring.
	Runtime = core.Runtime
	// RuntimeConfig assembles a sharded runtime.
	RuntimeConfig = core.RuntimeConfig
	// RingHealth is one ring's slice of the combined health view.
	RingHealth = core.RingHealth
	// RuntimeHealth is the full health view: ring health, the routing
	// epoch, and unknown-ring frame drops (mis-epoch'd peers).
	RuntimeHealth = core.RuntimeHealth
	// RoutingView is a snapshot of the epoch-versioned routing table a
	// Runtime owns; Grow/Shrink advance its epoch.
	RoutingView = core.RoutingView
	// ShardedDDS routes the distributed data service across the rings
	// of a Runtime by consistent key hashing, following the routing
	// table across elastic grows and shrinks.
	ShardedDDS = dds.Sharded
	// ApplyEvent describes one applied ordered operation to Cluster.OnApply
	// observers: the shard, the op's (origin, seq) position, and the keys
	// it changed.
	ApplyEvent = dds.ApplyEvent
	// StorageBackend is the durability backend behind WithStorage: a
	// per-ring write-ahead log plus snapshot store and the persisted
	// routing table. WithStorage builds the file-backed one;
	// NewMemoryStorage builds an in-process one for tests.
	StorageBackend = wal.Backend
)

// NewMemoryStorage returns an in-process StorageBackend whose logs
// survive a Cluster.Close — crash-restart tests Open a new Cluster over
// the same backend and exercise the full recovery path without disk.
func NewMemoryStorage() StorageBackend { return wal.NewMemory() }

// Cross-shard transaction types: epoch-pinned two-phase commit over the
// per-ring master locks. Cluster.Txn is the facade entry point; the
// coordinator types remain exported for advanced composition.
type (
	// TxnCoordinator runs multi-key cross-shard transactions against a
	// ShardedDDS.
	TxnCoordinator = txn.Coordinator
	// Txn is one coordinator-level transaction under construction. The
	// facade's Cluster.Txn returns a *Tx, which adds automatic retry of
	// retryable aborts on top.
	Txn = txn.Txn
	// EpochPin freezes a caller's view of the routing epoch across a
	// multi-step operation; Check reports ErrEpochChanged once it moves.
	EpochPin = core.EpochPin
)

// Read-consistency types: Cluster.Get serves reads from the key's local
// shard replica, and the options pick how stale that replica may be.
// See the README's "Read consistency" table for the mode × guarantee ×
// cost trade-offs.
type (
	// ReadOption selects a read's consistency mode; no option = eventual.
	ReadOption = dds.ReadOption
	// ReadConsistency enumerates the read modes.
	ReadConsistency = dds.ReadConsistency
)

// Read-consistency options, forwarded from the dds layer. WithSession is
// defined on the facade (it takes a *Session).
var (
	// WithEventual selects the eventual mode explicitly (the default).
	WithEventual = dds.WithEventual
	// WithMaxStaleness serves locally only if the replica proved itself
	// caught up within d; otherwise it fences on the key's ring first.
	WithMaxStaleness = dds.WithMaxStaleness
	// WithLinearizable fences on the key's ring before serving, so the
	// read observes every write ordered before it began.
	WithLinearizable = dds.WithLinearizable
	// WithReadLease amortizes linearizable fences over a lease window
	// pinned to the routing epoch (implies WithLinearizable).
	WithReadLease = dds.WithReadLease
)

// WithSession selects session (read-your-writes) consistency against the
// given session's writes.
func WithSession(s *Session) ReadOption { return dds.WithSession(s.s) }

// The error taxonomy. Every sentinel here that is transient matches
// ErrRetryable under errors.Is (equivalently raincore.IsRetryable); the
// Cluster facade absorbs those internally, so they are mainly of
// interest to callers composing the layers by hand.
var (
	// ErrResharding marks a write rejected because its keyspace slice is
	// mid-handoff; retryable — the slice unfreezes at the epoch flip.
	ErrResharding = dds.ErrResharding
	// ErrReshardAborted reports a handoff that rolled back to the old
	// routing epoch; retryable — the ring set is unchanged.
	ErrReshardAborted = core.ErrReshardAborted
	// ErrReshardInProgress rejects overlapping grow/shrink requests. NOT
	// retryable: re-running after the in-flight reshard would reshard
	// twice.
	ErrReshardInProgress = core.ErrReshardInProgress
	// ErrSnapshotting marks a write rejected because a cross-shard
	// consistent snapshot holds its barrier; retryable.
	ErrSnapshotting = dds.ErrSnapshotting
	// ErrEpochChanged reports a pinned routing epoch that advanced (or a
	// handoff in flight toward the next one); retryable — re-pin.
	ErrEpochChanged = core.ErrEpochChanged
	// ErrTxnAborted reports a transaction that changed nothing anywhere;
	// retryable — re-run the transaction.
	ErrTxnAborted = txn.ErrAborted
	// ErrTxnIndeterminate reports a phase-2 failure after at least one
	// participant ring committed with NO replicated commit record to
	// resolve the rest. NOT retryable: the commit may be partially
	// applied. The facade path no longer returns it — Cluster
	// transactions order a replicated commit record before phase 2, so a
	// mid-fan-out failure reports success and the unreached rings
	// converge from the record. Only hand-assembled coordinators built
	// with txn.WithoutCommitRecords can still see it; the sentinel stays
	// exported for their errors.Is checks (see README MIGRATION).
	ErrTxnIndeterminate = txn.ErrIndeterminate
)

// NoNode is the zero NodeID.
const NoNode = wire.NoNode

// Ring0 is the default ring of a single-ring deployment and the anchor
// ring of a sharded runtime.
const Ring0 = wire.Ring0

// NewNode builds a single-ring cluster member over the given transport
// conns — the paper's original per-node API, still the right tool for
// bare ordered-multicast deployments with no data service.
func NewNode(cfg Config, conns []PacketConn) (*Node, error) {
	return core.NewNode(cfg, conns)
}

// NewOpenClient builds an open-group client (§2.6).
var NewOpenClient = core.NewOpenClient

// ListenUDP opens a real UDP conn, the production transport of §2.1.
var ListenUDP = transport.ListenUDP

// FastRing returns tight simulation timers (milliseconds).
var FastRing = core.FastRing

// PaperRing returns timers matching the paper's deployment regime
// (sub-two-second fail-over, §3.2).
var PaperRing = core.PaperRing
